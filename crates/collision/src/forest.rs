//! Balancing-request trees (paper §3, Figure 2).
//!
//! During a phase every *heavy* processor grows a binary query tree:
//! its collision-game request yields `b = 2` accepted processors, which
//! become its two children. A child that is *applicative* (light at the
//! beginning of the phase and not yet reserved) reserves itself, sends
//! an id message to the tree's root ("boss"), and the search for that
//! branch ends. A child that cannot take load keeps searching on the
//! root's behalf — but only if its *sibling* cannot take load either
//! (the siblings check via their parent), which is what makes the
//! expected number of requests per root constant (Lemma 7).
//!
//! [`BalanceForest`] executes one phase's search for all heavy roots
//! simultaneously, one collision game per tree level, exactly as the
//! algorithm interleaves them.

use crate::game::{play_game_impl, GameOutcome, TargetSampler};
use crate::params::CollisionParams;
use crate::threaded::{
    play_game_pooled, play_game_pooled_faulty, play_game_threaded, play_game_threaded_faulty,
};
use pcrlb_faults::{FaultModel, GameFaults, MsgCtx, MsgKind};
use pcrlb_net::{ControlKind, WireLog};
use pcrlb_sim::{ProcId, SimRng, WorkerPool};

/// Fault context for one phase's search: the model plus a mutable
/// per-game nonce. Each tree level plays one collision game and
/// consumes one nonce, so re-sends of the same `(request, query)`
/// coordinates in different games (or phases) fail independently. The
/// balancer owns the counter and passes it back in every phase.
pub struct SearchFaults<'a> {
    model: &'a dyn FaultModel,
    nonce: &'a mut u64,
}

impl<'a> SearchFaults<'a> {
    /// Binds a fault model to the caller's game-nonce counter.
    pub fn new(model: &'a dyn FaultModel, nonce: &'a mut u64) -> Self {
        SearchFaults { model, nonce }
    }

    /// Takes the next game nonce, advancing the counter.
    fn next_game(&mut self) -> GameFaults<'a> {
        let gf = GameFaults::new(self.model, *self.nonce);
        *self.nonce += 1;
        gf
    }
}

/// How each level's collision game is executed.
enum GameExec<'a> {
    /// On the calling thread ([`play_game`]).
    Sequential,
    /// Across scoped threads spawned per game ([`play_game_threaded`]).
    Scoped(usize),
    /// On a persistent worker pool ([`play_game_pooled`]).
    Pooled(&'a WorkerPool),
}

/// A successful pairing of a heavy root with a light partner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// The heavy processor that initiated the search.
    pub heavy: ProcId,
    /// The reserved light partner.
    pub light: ProcId,
    /// Tree level at which the partner was found (0 = direct child of
    /// the root).
    pub level: u32,
}

/// Communication and progress statistics of one phase's search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Collision games played (= tree levels built).
    pub levels: u32,
    /// Total collision-game requests over all levels.
    pub requests: u64,
    /// Query messages (incl. re-sends inside games).
    pub queries: u64,
    /// Accept messages.
    pub accepts: u64,
    /// Id messages sent to roots.
    pub id_messages: u64,
    /// Sibling co-ordination messages (one per sibling pair that decides
    /// to keep searching; exchanged via the parent, paper §3).
    pub sibling_checks: u64,
    /// Simulated steps consumed by the collision games.
    pub steps: u64,
    /// Collision-game rounds executed over all levels (each costs
    /// `a·c` steps whether or not it made progress — Lemma 8 charges
    /// them all).
    pub rounds: u32,
    /// Executed rounds that delivered no accept to any request.
    pub wasted_rounds: u32,
    /// Messages (queries, accepts, and id messages) lost in flight.
    /// Lost messages are still counted under their send counters.
    pub dropped: u64,
}

/// Outcome of one phase's partner search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// One entry per matched root.
    pub matches: Vec<Match>,
    /// Roots that exhausted the depth limit without a partner.
    pub unmatched: Vec<ProcId>,
    /// Aggregate statistics.
    pub stats: SearchStats,
    /// Requests attributed to each root's tree, parallel to the root
    /// order given to [`BalanceForest::search`] (Lemma 7 measures its
    /// expectation).
    pub requests_per_root: Vec<u32>,
}

/// Per-processor search state, reused across phases to avoid
/// re-allocating `n`-sized arrays every `(log log n)^2 / 16` steps.
///
/// ```
/// use pcrlb_collision::{BalanceForest, CollisionParams};
/// use pcrlb_sim::SimRng;
///
/// let n = 512;
/// let heavy: Vec<usize> = (0..8).collect();
/// let light: Vec<usize> = (8..n).collect();
/// let mut forest = BalanceForest::new(n);
/// let out = forest.search(&heavy, &light, &CollisionParams::lemma1(), 3, &mut SimRng::new(7));
/// // With almost everyone light, every heavy root finds a partner...
/// assert!(out.unmatched.is_empty());
/// // ...and no light processor is promised to two roots.
/// let mut partners: Vec<_> = out.matches.iter().map(|m| m.light).collect();
/// partners.sort_unstable();
/// partners.dedup();
/// assert_eq!(partners.len(), heavy.len());
/// ```
pub struct BalanceForest {
    n: usize,
    /// Live draw domain `[0, active)` for complete-graph target draws.
    /// Equals `n` unless elastic membership shrank the cluster; the
    /// `n`-sized scratch arrays below are retained across epochs
    /// (incremental repair — a membership change costs one integer
    /// store, not a rebuild).
    active: usize,
    /// Root (boss) of the tree this processor currently works for.
    boss: Vec<Option<u32>>,
    /// Light at phase start and not yet reserved.
    applicative: Vec<bool>,
    /// Processor is engaged in this phase (root, forwarder, or
    /// reserved) — engaged processors never join a second tree.
    engaged: Vec<bool>,
    /// Dirty entries to reset cheaply.
    touched: Vec<ProcId>,
    /// Graph restriction for target draws; `None` = complete graph.
    sampler: Option<std::sync::Arc<dyn TargetSampler>>,
}

impl BalanceForest {
    /// Creates scratch state for `n` processors.
    pub fn new(n: usize) -> Self {
        BalanceForest {
            n,
            active: n,
            boss: vec![None; n],
            applicative: vec![false; n],
            engaged: vec![false; n],
            touched: Vec::new(),
            sampler: None,
        }
    }

    /// Restricts target draws to a neighborhood sampler (graph-based
    /// balancing). Games then always run sequentially — like wire
    /// narration, restricted sampling is a serial draw sequence — so
    /// `game_shards` is ignored while a sampler is installed. Pass
    /// `None` to restore the complete-graph fast path bit-identically.
    pub fn set_sampler(&mut self, sampler: Option<std::sync::Arc<dyn TargetSampler>>) {
        self.sampler = sampler;
    }

    /// Number of processors this forest serves.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Restricts complete-graph target draws to the live prefix
    /// `[0, active)` (elastic membership). Clamped to `[1, n]`. This is
    /// the forest's entire epoch repair: the `n`-sized boss /
    /// applicative / engaged scratch survives unchanged (departed
    /// entries are never touched because departed processors are
    /// neither heavy, light, nor drawable), so a membership transition
    /// costs O(1) instead of a rebuild.
    pub fn set_active(&mut self, active: usize) {
        self.active = active.clamp(1, self.n);
    }

    /// Current live draw domain.
    pub fn active(&self) -> usize {
        self.active
    }

    fn reset(&mut self, light: &[ProcId]) {
        for &p in &self.touched {
            self.boss[p] = None;
            self.applicative[p] = false;
            self.engaged[p] = false;
        }
        self.touched.clear();
        for &p in light {
            self.applicative[p] = true;
            self.touched.push(p);
        }
    }

    /// Runs the phase search: every processor in `heavy` tries to find a
    /// partner among `light`, building query trees of at most
    /// `max_depth` levels using `params`-collision games.
    ///
    /// `heavy` and `light` must be disjoint (a processor cannot be both
    /// above `T/2` and below `T/16`).
    pub fn search(
        &mut self,
        heavy: &[ProcId],
        light: &[ProcId],
        params: &CollisionParams,
        max_depth: u32,
        rng: &mut SimRng,
    ) -> SearchOutcome {
        self.search_impl(
            heavy,
            light,
            params,
            max_depth,
            rng,
            GameExec::Sequential,
            None,
            None,
        )
    }

    /// Like [`BalanceForest::search`], narrating every protocol message
    /// (queries, accepts, id messages, sibling checks) into `log` as
    /// [`pcrlb_net::ControlRecord`]s in emission order — the feed the
    /// net runtime frames onto the wire. Games run sequentially on the
    /// calling thread (the log is a serial narration); the outcome is
    /// bit-identical to [`BalanceForest::search`] regardless.
    pub fn search_logged(
        &mut self,
        heavy: &[ProcId],
        light: &[ProcId],
        params: &CollisionParams,
        max_depth: u32,
        rng: &mut SimRng,
        log: &mut WireLog,
    ) -> SearchOutcome {
        self.search_impl(
            heavy,
            light,
            params,
            max_depth,
            rng,
            GameExec::Sequential,
            None,
            Some(log),
        )
    }

    /// Logged variant of [`BalanceForest::search_faulty`]; each
    /// record carries the fault coordinates its drop verdict was hashed
    /// from, so a transport can reproduce the exact same losses.
    #[allow(clippy::too_many_arguments)]
    pub fn search_logged_faulty(
        &mut self,
        heavy: &[ProcId],
        light: &[ProcId],
        params: &CollisionParams,
        max_depth: u32,
        rng: &mut SimRng,
        faults: SearchFaults<'_>,
        log: &mut WireLog,
    ) -> SearchOutcome {
        self.search_impl(
            heavy,
            light,
            params,
            max_depth,
            rng,
            GameExec::Sequential,
            Some(faults),
            Some(log),
        )
    }

    /// Like [`BalanceForest::search`], over an unreliable network:
    /// every level's collision game runs its messages past the fault
    /// model, and the id message a reserved partner sends to its boss
    /// may itself be lost — the partner stays reserved for the phase
    /// but the root never learns of it and keeps (or retries) its
    /// search. Deterministic in `(rng state, fault model, nonce)`.
    pub fn search_faulty(
        &mut self,
        heavy: &[ProcId],
        light: &[ProcId],
        params: &CollisionParams,
        max_depth: u32,
        rng: &mut SimRng,
        faults: SearchFaults<'_>,
    ) -> SearchOutcome {
        self.search_impl(
            heavy,
            light,
            params,
            max_depth,
            rng,
            GameExec::Sequential,
            Some(faults),
            None,
        )
    }

    /// Like [`BalanceForest::search`], but each level's collision game
    /// executes across `shards` OS threads with channel-borne messages
    /// ([`play_game_threaded`]). The threaded game is bit-identical to
    /// the sequential one for the same RNG state, so the search outcome
    /// is independent of the shard count — a test asserts this.
    pub fn search_threaded(
        &mut self,
        heavy: &[ProcId],
        light: &[ProcId],
        params: &CollisionParams,
        max_depth: u32,
        rng: &mut SimRng,
        shards: usize,
    ) -> SearchOutcome {
        let exec = if shards > 1 {
            GameExec::Scoped(shards)
        } else {
            GameExec::Sequential
        };
        self.search_impl(heavy, light, params, max_depth, rng, exec, None, None)
    }

    /// Faulty variant of [`BalanceForest::search_threaded`];
    /// bit-identical to [`BalanceForest::search_faulty`] for the same
    /// inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn search_threaded_faulty(
        &mut self,
        heavy: &[ProcId],
        light: &[ProcId],
        params: &CollisionParams,
        max_depth: u32,
        rng: &mut SimRng,
        shards: usize,
        faults: SearchFaults<'_>,
    ) -> SearchOutcome {
        let exec = if shards > 1 {
            GameExec::Scoped(shards)
        } else {
            GameExec::Sequential
        };
        self.search_impl(
            heavy,
            light,
            params,
            max_depth,
            rng,
            exec,
            Some(faults),
            None,
        )
    }

    /// Like [`BalanceForest::search_threaded`], but each level's
    /// collision game runs on `pool`'s persistent workers
    /// ([`play_game_pooled`]) — no thread spawns per game, which is
    /// what a balancer playing a game every phase wants. The outcome is
    /// bit-identical to [`BalanceForest::search`] for the same RNG
    /// state.
    pub fn search_pooled(
        &mut self,
        heavy: &[ProcId],
        light: &[ProcId],
        params: &CollisionParams,
        max_depth: u32,
        rng: &mut SimRng,
        pool: &WorkerPool,
    ) -> SearchOutcome {
        self.search_impl(
            heavy,
            light,
            params,
            max_depth,
            rng,
            GameExec::Pooled(pool),
            None,
            None,
        )
    }

    /// Faulty variant of [`BalanceForest::search_pooled`];
    /// bit-identical to [`BalanceForest::search_faulty`] for the same
    /// inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn search_pooled_faulty(
        &mut self,
        heavy: &[ProcId],
        light: &[ProcId],
        params: &CollisionParams,
        max_depth: u32,
        rng: &mut SimRng,
        pool: &WorkerPool,
        faults: SearchFaults<'_>,
    ) -> SearchOutcome {
        self.search_impl(
            heavy,
            light,
            params,
            max_depth,
            rng,
            GameExec::Pooled(pool),
            Some(faults),
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn search_impl(
        &mut self,
        heavy: &[ProcId],
        light: &[ProcId],
        params: &CollisionParams,
        max_depth: u32,
        rng: &mut SimRng,
        exec: GameExec<'_>,
        mut faults: Option<SearchFaults<'_>>,
        mut log: Option<&mut WireLog>,
    ) -> SearchOutcome {
        debug_assert!(heavy.iter().all(|&p| p < self.active));
        debug_assert!(light.iter().all(|&p| p < self.active));
        debug_assert!(
            log.is_none() || matches!(exec, GameExec::Sequential),
            "wire logging is a serial narration: games must run sequentially"
        );
        // Graph-restricted sampling is a serial draw sequence, same as
        // wire narration: demote any parallel exec to sequential.
        let exec = if self.sampler.is_some() {
            GameExec::Sequential
        } else {
            exec
        };

        self.reset(light);

        let mut stats = SearchStats::default();
        let mut matches = Vec::new();
        let mut requests_per_root = vec![0u32; heavy.len()];
        // Root index per root processor for attribution.
        let mut root_index = vec![u32::MAX; 0];
        root_index.resize(self.n, u32::MAX);
        let mut matched_root = vec![false; heavy.len()];

        // Level-0 searchers: the heavy roots themselves.
        let mut searchers: Vec<ProcId> = Vec::with_capacity(heavy.len());
        for (i, &h) in heavy.iter().enumerate() {
            debug_assert!(
                !self.applicative[h],
                "processor {h} classified both heavy and light"
            );
            root_index[h] = i as u32;
            self.boss[h] = Some(h as u32);
            self.engaged[h] = true;
            self.touched.push(h);
            searchers.push(h);
        }

        let mut next_searchers: Vec<ProcId> = Vec::new();
        for level in 0..max_depth {
            if searchers.is_empty() {
                break;
            }
            // One collision game over all current searchers, across all
            // trees at once — the paper applies the protocol "globally,
            // that is, seen over all requesting processors".
            let game_faults = faults.as_mut().map(|f| f.next_game());
            // Games draw targets from the live domain `[0, active)` —
            // identical to the historic `n` unless membership shrank.
            let domain = self.active;
            let outcome: GameOutcome = match (&exec, game_faults) {
                (GameExec::Sequential, gf) => play_game_impl(
                    domain,
                    &searchers,
                    params,
                    rng,
                    gf,
                    log.as_deref_mut(),
                    self.sampler.as_deref(),
                ),
                (GameExec::Scoped(shards), None) => {
                    play_game_threaded(domain, &searchers, params, rng, *shards)
                }
                (GameExec::Scoped(shards), Some(gf)) => {
                    play_game_threaded_faulty(domain, &searchers, params, rng, *shards, gf)
                }
                (GameExec::Pooled(pool), None) => {
                    play_game_pooled(domain, &searchers, params, rng, pool)
                }
                (GameExec::Pooled(pool), Some(gf)) => {
                    play_game_pooled_faulty(domain, &searchers, params, rng, pool, gf)
                }
            };
            stats.levels += 1;
            stats.requests += searchers.len() as u64;
            stats.queries += outcome.queries_sent;
            stats.accepts += outcome.accepts_sent;
            stats.steps += outcome.steps;
            stats.rounds += outcome.rounds_used;
            stats.wasted_rounds += outcome.wasted_rounds;
            stats.dropped += outcome.queries_dropped + outcome.accepts_dropped;

            next_searchers.clear();
            for (si, &s) in searchers.iter().enumerate() {
                let boss = self.boss[s].expect("searcher must have a boss");
                let ri = root_index[boss as usize] as usize;
                requests_per_root[ri] = requests_per_root[ri].saturating_add(1);

                if matched_root[ri] {
                    // Root already served by an earlier id message this
                    // level loop; this branch stops expanding. (The real
                    // system would cancel via the tree; we charge the
                    // request above either way.)
                    continue;
                }

                let accepted = &outcome.accepted[si];
                if accepted.len() < params.b {
                    // Collision game failed for this request: the
                    // searcher retries at the next level with fresh
                    // random choices.
                    next_searchers.push(s);
                    continue;
                }
                // Take the first b accepted queries as tree children.
                let children = &accepted[..params.b];

                // First pass: applicative children reserve themselves
                // and message the boss. The id message travels over
                // the (possibly faulty) network: if it is lost, the
                // child stays reserved for this phase but the boss
                // never learns of the match — the sibling may still
                // try, and the root otherwise retries next phase.
                let mut found_partner = false;
                for (slot, &ch) in children.iter().enumerate() {
                    if self.applicative[ch] && !found_partner {
                        self.applicative[ch] = false;
                        self.engaged[ch] = true;
                        self.touched.push(ch);
                        stats.id_messages += 1;
                        let id_dropped = game_faults.is_some_and(|gf| {
                            gf.dropped(level, si as u32, slot as u32, MsgKind::IdMessage)
                        });
                        if let Some(l) = log.as_deref_mut() {
                            match game_faults {
                                Some(gf) => l.push_faultable(
                                    ControlKind::IdMessage,
                                    ch,
                                    boss as usize,
                                    MsgCtx {
                                        nonce: gf.nonce,
                                        round: level,
                                        request: si as u32,
                                        query: slot as u32,
                                        kind: MsgKind::IdMessage,
                                    },
                                    id_dropped,
                                ),
                                None => l.push_reliable(ControlKind::IdMessage, ch, boss as usize),
                            }
                        }
                        if id_dropped {
                            stats.dropped += 1;
                            continue;
                        }
                        matches.push(Match {
                            heavy: boss as ProcId,
                            light: ch,
                            level,
                        });
                        matched_root[ri] = true;
                        found_partner = true;
                    }
                }
                if found_partner {
                    continue;
                }
                // Second pass: both children cannot take load — they
                // co-ordinate through the parent (one sibling check) and
                // both keep searching, doubling the frontier.
                stats.sibling_checks += 1;
                if let Some(l) = log.as_deref_mut() {
                    // The siblings co-ordinate through their parent:
                    // one wire message between the two children.
                    l.push_reliable(ControlKind::Probe, children[0], children[1]);
                }
                for &ch in children {
                    if self.engaged[ch] {
                        // Already a root, forwarder, or reserved light
                        // processor of another tree: it will not search
                        // for a second boss. The branch dies here.
                        continue;
                    }
                    self.engaged[ch] = true;
                    self.boss[ch] = Some(boss);
                    self.touched.push(ch);
                    next_searchers.push(ch);
                }
            }
            std::mem::swap(&mut searchers, &mut next_searchers);
        }

        let unmatched: Vec<ProcId> = heavy
            .iter()
            .enumerate()
            .filter(|(i, _)| !matched_root[*i])
            .map(|(_, &h)| h)
            .collect();

        SearchOutcome {
            matches,
            unmatched,
            stats,
            requests_per_root,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(r: std::ops::Range<usize>) -> Vec<ProcId> {
        r.collect()
    }

    #[test]
    fn single_heavy_many_light_matches_at_level_zero() {
        let n = 256;
        let mut forest = BalanceForest::new(n);
        let heavy = vec![0];
        let light = ids(1..n);
        let mut rng = SimRng::new(1);
        let out = forest.search(&heavy, &light, &CollisionParams::lemma1(), 3, &mut rng);
        assert_eq!(out.matches.len(), 1);
        assert_eq!(out.matches[0].heavy, 0);
        assert_eq!(out.matches[0].level, 0);
        assert!(out.unmatched.is_empty());
        assert_eq!(out.requests_per_root, vec![1]);
        assert_eq!(out.stats.id_messages, 1);
    }

    #[test]
    fn partners_are_distinct_lights() {
        // Many heavy roots must never share a partner (reservation).
        let n = 1024;
        let mut forest = BalanceForest::new(n);
        let heavy = ids(0..32);
        let light = ids(32..n);
        let mut rng = SimRng::new(7);
        let out = forest.search(&heavy, &light, &CollisionParams::lemma1(), 4, &mut rng);
        let mut partners: Vec<ProcId> = out.matches.iter().map(|m| m.light).collect();
        let before = partners.len();
        partners.sort_unstable();
        partners.dedup();
        assert_eq!(partners.len(), before, "a light partner was reserved twice");
        // All partners must come from the light set.
        assert!(partners.iter().all(|&p| p >= 32));
    }

    #[test]
    fn each_root_matches_at_most_once() {
        let n = 512;
        let mut forest = BalanceForest::new(n);
        let heavy = ids(0..16);
        let light = ids(16..n);
        let mut rng = SimRng::new(3);
        let out = forest.search(&heavy, &light, &CollisionParams::lemma1(), 4, &mut rng);
        let mut roots: Vec<ProcId> = out.matches.iter().map(|m| m.heavy).collect();
        let before = roots.len();
        roots.sort_unstable();
        roots.dedup();
        assert_eq!(roots.len(), before);
    }

    #[test]
    fn matches_plus_unmatched_covers_heavy() {
        let n = 256;
        let mut forest = BalanceForest::new(n);
        let heavy = ids(0..20);
        let light = ids(100..140);
        let mut rng = SimRng::new(11);
        let out = forest.search(&heavy, &light, &CollisionParams::lemma1(), 2, &mut rng);
        assert_eq!(out.matches.len() + out.unmatched.len(), heavy.len());
    }

    #[test]
    fn no_lights_means_no_matches() {
        let n = 128;
        let mut forest = BalanceForest::new(n);
        let heavy = ids(0..4);
        let mut rng = SimRng::new(5);
        let out = forest.search(&heavy, &[], &CollisionParams::lemma1(), 3, &mut rng);
        assert!(out.matches.is_empty());
        assert_eq!(out.unmatched.len(), 4);
        // Trees still grew and spent communication.
        assert!(out.stats.requests >= 4);
        assert!(out.stats.levels >= 1);
    }

    #[test]
    fn abundant_lights_need_constant_requests() {
        // Lemma 7: with (1 - 16c/T) of processors applicative, the
        // expected number of requests per root is constant. With ~99%
        // light, nearly every root should match at level 0.
        let n = 4096;
        let mut forest = BalanceForest::new(n);
        let heavy = ids(0..8);
        let light = ids(8..n);
        let mut total_requests = 0u64;
        let trials = 50;
        for seed in 0..trials {
            let mut rng = SimRng::new(seed);
            let out = forest.search(&heavy, &light, &CollisionParams::lemma1(), 5, &mut rng);
            assert!(out.unmatched.is_empty(), "seed {seed}");
            total_requests += out.stats.requests;
        }
        let per_root = total_requests as f64 / (trials as f64 * heavy.len() as f64);
        assert!(
            per_root < 1.5,
            "expected ~1 request per root with abundant lights, got {per_root}"
        );
    }

    #[test]
    fn forest_state_resets_between_phases() {
        // Running the same search twice on a reused forest (same seed)
        // must give identical results: any leaked reservation, boss, or
        // engagement flag from the first run would change the second.
        let n = 256;
        let params = CollisionParams::lemma1();
        let heavy = ids(0..12);
        let light = ids(12..n);
        let mut reused = BalanceForest::new(n);
        let out1 = reused.search(&heavy, &light, &params, 3, &mut SimRng::new(9));
        let out2 = reused.search(&heavy, &light, &params, 3, &mut SimRng::new(9));
        assert_eq!(out1.matches, out2.matches);
        assert_eq!(out1.unmatched, out2.unmatched);
        assert_eq!(out1.stats, out2.stats);
        // And a fresh forest agrees too.
        let mut fresh = BalanceForest::new(n);
        let out3 = fresh.search(&heavy, &light, &params, 3, &mut SimRng::new(9));
        assert_eq!(out1.matches, out3.matches);
    }

    #[test]
    fn empty_heavy_is_trivially_done() {
        let mut forest = BalanceForest::new(64);
        let mut rng = SimRng::new(2);
        let out = forest.search(&[], &ids(0..64), &CollisionParams::lemma1(), 3, &mut rng);
        assert!(out.matches.is_empty());
        assert!(out.unmatched.is_empty());
        assert_eq!(out.stats.levels, 0);
        assert_eq!(out.stats.steps, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "both heavy and light")]
    fn heavy_and_light_overlap_is_a_bug() {
        let mut forest = BalanceForest::new(64);
        let mut rng = SimRng::new(2);
        forest.search(&[3], &[3, 4], &CollisionParams::lemma1(), 3, &mut rng);
    }

    #[test]
    fn threaded_search_matches_sequential() {
        let n = 1024;
        let heavy = ids(0..24);
        let light = ids(24..n);
        let params = CollisionParams::lemma1();
        let mut f1 = BalanceForest::new(n);
        let base = f1.search(&heavy, &light, &params, 4, &mut SimRng::new(5));
        for shards in [2usize, 4, 8] {
            let mut f2 = BalanceForest::new(n);
            let out = f2.search_threaded(&heavy, &light, &params, 4, &mut SimRng::new(5), shards);
            assert_eq!(out.matches, base.matches, "shards={shards}");
            assert_eq!(out.unmatched, base.unmatched);
            assert_eq!(out.stats, base.stats);
        }
    }

    #[test]
    fn pooled_search_matches_sequential() {
        // One pool reused for every search — games at every tree level
        // across repeated phases all run on the same workers.
        let n = 1024;
        let heavy = ids(0..24);
        let light = ids(24..n);
        let params = CollisionParams::lemma1();
        let mut f1 = BalanceForest::new(n);
        let base = f1.search(&heavy, &light, &params, 4, &mut SimRng::new(5));
        let pool = WorkerPool::new(4);
        for _phase in 0..3 {
            let mut f2 = BalanceForest::new(n);
            let out = f2.search_pooled(&heavy, &light, &params, 4, &mut SimRng::new(5), &pool);
            assert_eq!(out.matches, base.matches);
            assert_eq!(out.unmatched, base.unmatched);
            assert_eq!(out.stats, base.stats);
        }
    }

    #[test]
    fn reliable_faulty_search_matches_plain_search() {
        use pcrlb_faults::Reliable;
        let n = 512;
        let heavy = ids(0..16);
        let light = ids(16..n);
        let params = CollisionParams::lemma1();
        let mut f1 = BalanceForest::new(n);
        let base = f1.search(&heavy, &light, &params, 4, &mut SimRng::new(21));
        let mut f2 = BalanceForest::new(n);
        let mut nonce = 0u64;
        let out = f2.search_faulty(
            &heavy,
            &light,
            &params,
            4,
            &mut SimRng::new(21),
            SearchFaults::new(&Reliable, &mut nonce),
        );
        assert_eq!(out.matches, base.matches);
        assert_eq!(out.unmatched, base.unmatched);
        assert_eq!(out.stats, base.stats);
        assert_eq!(nonce as u32, out.stats.levels, "one nonce per level game");
    }

    #[test]
    fn faulty_search_is_deterministic_and_backend_independent() {
        use pcrlb_faults::Bernoulli;
        let n = 1024;
        let heavy = ids(0..24);
        let light = ids(24..n);
        let params = CollisionParams::lemma1();
        let loss = Bernoulli::new(17, 0.2);
        let run_seq = || {
            let mut f = BalanceForest::new(n);
            let mut nonce = 5u64;
            f.search_faulty(
                &heavy,
                &light,
                &params,
                4,
                &mut SimRng::new(8),
                SearchFaults::new(&loss, &mut nonce),
            )
        };
        let base = run_seq();
        let again = run_seq();
        assert_eq!(base.matches, again.matches);
        assert_eq!(base.stats, again.stats);
        for shards in [2usize, 4] {
            let mut f = BalanceForest::new(n);
            let mut nonce = 5u64;
            let out = f.search_threaded_faulty(
                &heavy,
                &light,
                &params,
                4,
                &mut SimRng::new(8),
                shards,
                SearchFaults::new(&loss, &mut nonce),
            );
            assert_eq!(out.matches, base.matches, "shards={shards}");
            assert_eq!(out.stats, base.stats);
        }
        let pool = WorkerPool::new(4);
        let mut f = BalanceForest::new(n);
        let mut nonce = 5u64;
        let out = f.search_pooled_faulty(
            &heavy,
            &light,
            &params,
            4,
            &mut SimRng::new(8),
            &pool,
            SearchFaults::new(&loss, &mut nonce),
        );
        assert_eq!(out.matches, base.matches);
        assert_eq!(out.stats, base.stats);
    }

    #[test]
    fn logged_search_is_bit_identical_and_log_matches_stats() {
        use pcrlb_faults::Bernoulli;
        use pcrlb_net::ControlKind;
        let n = 1024;
        let heavy = ids(0..24);
        let light = ids(24..200); // scarce lights force deeper trees
        let params = CollisionParams::lemma1();
        let loss = Bernoulli::new(17, 0.2);

        let mut f1 = BalanceForest::new(n);
        let mut nonce1 = 5u64;
        let base = f1.search_faulty(
            &heavy,
            &light,
            &params,
            4,
            &mut SimRng::new(8),
            SearchFaults::new(&loss, &mut nonce1),
        );
        let mut f2 = BalanceForest::new(n);
        let mut nonce2 = 5u64;
        let mut log = WireLog::new();
        let logged = f2.search_logged_faulty(
            &heavy,
            &light,
            &params,
            4,
            &mut SimRng::new(8),
            SearchFaults::new(&loss, &mut nonce2),
            &mut log,
        );
        assert_eq!(base.matches, logged.matches);
        assert_eq!(base.unmatched, logged.unmatched);
        assert_eq!(base.stats, logged.stats);
        assert_eq!(nonce1, nonce2);

        // The log is a complete narration: one record per counted
        // message of every kind, drop flags summing to stats.dropped.
        let count = |k: ControlKind| log.control.iter().filter(|r| r.kind == k).count() as u64;
        assert_eq!(count(ControlKind::Query), logged.stats.queries);
        assert_eq!(count(ControlKind::Accept), logged.stats.accepts);
        assert_eq!(count(ControlKind::IdMessage), logged.stats.id_messages);
        assert_eq!(count(ControlKind::Probe), logged.stats.sibling_checks);
        let dropped = log.control.iter().filter(|r| r.dropped).count() as u64;
        assert_eq!(dropped, logged.stats.dropped);
        // Sibling checks are not subject to fault injection.
        assert!(log
            .control
            .iter()
            .filter(|r| r.kind == ControlKind::Probe)
            .all(|r| r.fault.is_none() && !r.dropped));

        // Reliable logged search agrees with the plain one too.
        let mut f3 = BalanceForest::new(n);
        let plain = f3.search(&heavy, &light, &params, 4, &mut SimRng::new(8));
        let mut f4 = BalanceForest::new(n);
        let mut rlog = WireLog::new();
        let rlogged = f4.search_logged(&heavy, &light, &params, 4, &mut SimRng::new(8), &mut rlog);
        assert_eq!(plain.matches, rlogged.matches);
        assert_eq!(plain.stats, rlogged.stats);
        assert_eq!(
            rlog.len() as u64,
            plain.stats.queries
                + plain.stats.accepts
                + plain.stats.id_messages
                + plain.stats.sibling_checks
        );
    }

    #[test]
    fn lossy_search_still_pairs_and_counts_drops() {
        use pcrlb_faults::Bernoulli;
        // 20% loss with abundant lights: most roots should still find a
        // partner within the depth budget, and drops must be counted.
        let n = 2048;
        let heavy = ids(0..16);
        let light = ids(16..n);
        let params = CollisionParams::lemma1();
        let loss = Bernoulli::new(3, 0.2);
        let mut matched = 0usize;
        let mut dropped = 0u64;
        let mut nonce = 0u64;
        for seed in 0..10 {
            let mut f = BalanceForest::new(n);
            let out = f.search_faulty(
                &heavy,
                &light,
                &params,
                5,
                &mut SimRng::new(seed),
                SearchFaults::new(&loss, &mut nonce),
            );
            matched += out.matches.len();
            dropped += out.stats.dropped;
        }
        assert!(dropped > 0, "20% loss must drop messages");
        assert!(
            matched >= 16 * 10 * 8 / 10,
            "most roots should still match under 20% loss, got {matched}/160"
        );
    }

    #[test]
    fn frontier_doubles_without_lights() {
        // With no applicative processors every sibling pair keeps
        // searching: requests per level should grow roughly 2^level
        // until the engaged-set saturates.
        let n = 1 << 14;
        let mut forest = BalanceForest::new(n);
        let mut rng = SimRng::new(13);
        let out = forest.search(&[0], &[], &CollisionParams::lemma1(), 4, &mut rng);
        // Root alone at level 0 → 1 request; afterwards 2, 4, 8 if all
        // games succeed (they do: no contention at this scale).
        assert_eq!(out.stats.requests, 1 + 2 + 4 + 8);
        assert_eq!(out.requests_per_root, vec![15]);
    }
}
