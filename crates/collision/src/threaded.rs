//! A genuinely parallel, message-passing implementation of the
//! collision game.
//!
//! [`crate::game::play_game`] simulates the protocol's message counts on
//! one thread. This module runs the *same* protocol across OS threads:
//! processors are partitioned into shards, each shard owns the requests
//! originating in it and answers the queries addressed to it, and all
//! communication travels through channels — no shard ever reads another
//! shard's state directly.
//!
//! The protocol is insensitive to message arrival order within a round:
//! a target accepts *all or none* of a round's queries depending only on
//! their count (plus its cumulative accept count), so the outcome is
//! deterministic even though thread scheduling is not. A test asserts
//! bit-equality with the sequential implementation for identical seeds.

use crate::game::{play_game, GameOutcome};
use crate::params::CollisionParams;
use pcrlb_sim::{ProcId, SimRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Barrier;

/// A query travelling to the shard that owns `target`.
#[derive(Debug, Clone, Copy)]
struct QueryMsg {
    request: u32,
    query: u32,
    target: ProcId,
}

/// An accept travelling back to the shard that owns request `request`.
#[derive(Debug, Clone, Copy)]
struct AcceptMsg {
    request: u32,
    query: u32,
}

struct RequestState {
    targets: Vec<ProcId>,
    accepted_mask: Vec<bool>,
    accepts: usize,
    done: bool,
}

/// Plays one collision game across `shards` worker threads, returning
/// the same outcome the sequential [`play_game`] produces for the same
/// seed (accepted lists are reported in ascending target order; the
/// sequential order coincides because targets are sampled identically).
///
/// # Panics
/// Panics under the same conditions as [`play_game`].
pub fn play_game_threaded(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
    shards: usize,
) -> GameOutcome {
    params.validate().expect("invalid collision parameters");
    assert!(n > params.a, "need n > a distinct targets");
    let shards = shards.clamp(1, requesters.len().max(1));

    if requesters.is_empty() {
        return GameOutcome {
            accepted: Vec::new(),
            rounds_used: 0,
            success: true,
            queries_sent: 0,
            accepts_sent: 0,
            steps: 0,
        };
    }

    // Sample all target sets up front with the caller's RNG — the same
    // draws the sequential implementation makes, so both games unfold
    // identically.
    let mut scratch = Vec::with_capacity(params.a + 1);
    let mut requests: Vec<RequestState> = requesters
        .iter()
        .map(|&req| {
            rng.distinct(n, params.a + 1, &mut scratch);
            let targets: Vec<ProcId> = scratch
                .iter()
                .copied()
                .filter(|&t| t != req)
                .take(params.a)
                .collect();
            RequestState {
                accepted_mask: vec![false; targets.len()],
                targets,
                accepts: 0,
                done: false,
            }
        })
        .collect();

    let max_rounds = params.rounds(n);
    let reqs_per_shard = requests.len().div_ceil(shards);
    // Shard that owns processor `t` (for query answering).
    let owner = |t: ProcId| -> usize { t * shards / n };
    // Shard that owns request `ri`.
    let req_owner = |ri: usize| -> usize { (ri / reqs_per_shard).min(shards - 1) };

    let (query_txs, query_rxs): (Vec<Sender<QueryMsg>>, Vec<Receiver<QueryMsg>>) =
        (0..shards).map(|_| channel()).unzip();
    let (accept_txs, accept_rxs): (Vec<Sender<AcceptMsg>>, Vec<Receiver<AcceptMsg>>) =
        (0..shards).map(|_| channel()).unzip();

    let barrier = Barrier::new(shards);
    let open_count = AtomicUsize::new(requests.len());
    let queries_sent = AtomicU64::new(0);
    let accepts_sent = AtomicU64::new(0);
    let rounds_used = AtomicU64::new(0);

    // Split the request vector into per-shard mutable chunks.
    let mut chunks: Vec<&mut [RequestState]> = Vec::with_capacity(shards);
    {
        let mut rest: &mut [RequestState] = &mut requests;
        for _ in 0..shards {
            let take = reqs_per_shard.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            chunks.push(head);
            rest = tail;
        }
    }

    // Each shard thread *owns* its inbound channel ends (std receivers
    // are not cloneable) and holds cloned senders for every shard.
    std::thread::scope(|scope| {
        let shard_inputs = chunks.into_iter().zip(query_rxs).zip(accept_rxs);
        for (sid, ((chunk, query_rx), accept_rx)) in shard_inputs.enumerate() {
            let query_txs = query_txs.clone();
            let accept_txs = accept_txs.clone();
            let barrier = &barrier;
            let open_count = &open_count;
            let queries_sent = &queries_sent;
            let accepts_sent = &accepts_sent;
            let rounds_used = &rounds_used;
            scope.spawn(move || {
                // Cumulative accepts for targets owned by this shard.
                let mut accepted_by: HashMap<ProcId, usize> = HashMap::new();
                let mut inbox: HashMap<ProcId, Vec<QueryMsg>> = HashMap::new();
                let base = sid * reqs_per_shard;

                for round in 0..max_rounds {
                    if open_count.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    if sid == 0 {
                        rounds_used.store(round as u64 + 1, Ordering::SeqCst);
                    }
                    // Phase 1: (re)send unaccepted queries of open
                    // requests.
                    let mut sent = 0u64;
                    for (local, req) in chunk.iter().enumerate() {
                        if req.done {
                            continue;
                        }
                        let ri = (base + local) as u32;
                        for (qi, &t) in req.targets.iter().enumerate() {
                            if !req.accepted_mask[qi] {
                                sent += 1;
                                query_txs[owner(t)]
                                    .send(QueryMsg {
                                        request: ri,
                                        query: qi as u32,
                                        target: t,
                                    })
                                    .expect("query channel closed");
                            }
                        }
                    }
                    queries_sent.fetch_add(sent, Ordering::Relaxed);
                    barrier.wait(); // all queries of this round delivered

                    // Phase 2: answer the queries addressed to targets
                    // this shard owns.
                    inbox.clear();
                    for msg in query_rx.try_iter() {
                        inbox.entry(msg.target).or_default().push(msg);
                    }
                    let mut accepted = 0u64;
                    for (&target, msgs) in inbox.iter() {
                        let already = accepted_by.get(&target).copied().unwrap_or(0);
                        if already >= params.c || already + msgs.len() > params.c {
                            continue; // collision: answers none
                        }
                        *accepted_by.entry(target).or_insert(0) += msgs.len();
                        for m in msgs {
                            accepted += 1;
                            accept_txs[req_owner(m.request as usize)]
                                .send(AcceptMsg {
                                    request: m.request,
                                    query: m.query,
                                })
                                .expect("accept channel closed");
                        }
                    }
                    accepts_sent.fetch_add(accepted, Ordering::Relaxed);
                    barrier.wait(); // all accepts of this round delivered

                    // Phase 3: apply accepts; satisfied requests leave.
                    let mut newly_done = 0usize;
                    for msg in accept_rx.try_iter() {
                        let local = msg.request as usize - base;
                        let req = &mut chunk[local];
                        req.accepted_mask[msg.query as usize] = true;
                        req.accepts += 1;
                    }
                    for req in chunk.iter_mut() {
                        if !req.done && req.accepts >= params.b {
                            req.done = true;
                            newly_done += 1;
                        }
                    }
                    open_count.fetch_sub(newly_done, Ordering::SeqCst);
                    barrier.wait(); // everyone sees the new open count
                }
            });
        }
    });

    let accepted: Vec<Vec<ProcId>> = requests
        .iter()
        .map(|req| {
            req.targets
                .iter()
                .zip(&req.accepted_mask)
                .filter(|(_, &acc)| acc)
                .map(|(&t, _)| t)
                .collect()
        })
        .collect();
    let success = requests.iter().all(|r| r.accepts >= params.b);
    let rounds = rounds_used.load(Ordering::SeqCst) as u32;

    GameOutcome {
        accepted,
        rounds_used: rounds,
        success,
        queries_sent: queries_sent.load(Ordering::Relaxed),
        accepts_sent: accepts_sent.load(Ordering::Relaxed),
        steps: params.steps_per_round() * rounds as u64,
    }
}

/// Convenience wrapper asserting agreement between the threaded and the
/// sequential game for a given seed. Returns the (common) outcome.
/// Intended for tests and demos.
pub fn play_game_verified(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    seed: u64,
    shards: usize,
) -> GameOutcome {
    let mut r1 = SimRng::new(seed);
    let mut r2 = SimRng::new(seed);
    let seq = play_game(n, requesters, params, &mut r1);
    let par = play_game_threaded(n, requesters, params, &mut r2, shards);
    assert_eq!(seq.accepted, par.accepted, "threaded game diverged");
    assert_eq!(seq.queries_sent, par.queries_sent);
    assert_eq!(seq.accepts_sent, par.accepts_sent);
    assert_eq!(seq.rounds_used, par.rounds_used);
    par
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_matches_sequential() {
        let params = CollisionParams::lemma1();
        for shards in [1, 2, 4, 7] {
            for seed in 0..10 {
                let requesters: Vec<ProcId> = (0..40).map(|i| i * 3).collect();
                play_game_verified(1024, &requesters, &params, seed, shards);
            }
        }
    }

    #[test]
    fn threaded_matches_sequential_under_contention() {
        // Heavy contention: many requests on a small machine, multiple
        // rounds, failures — the hardest case for determinism.
        let params = CollisionParams::lemma1();
        let requesters: Vec<ProcId> = (0..24).collect();
        for seed in 0..10 {
            play_game_verified(32, &requesters, &params, seed, 4);
        }
    }

    #[test]
    fn empty_requesters() {
        let params = CollisionParams::lemma1();
        let mut rng = SimRng::new(1);
        let out = play_game_threaded(64, &[], &params, &mut rng, 4);
        assert!(out.success);
        assert_eq!(out.rounds_used, 0);
    }

    #[test]
    fn more_shards_than_requests_is_clamped() {
        let params = CollisionParams::lemma1();
        let mut rng = SimRng::new(2);
        let out = play_game_threaded(256, &[1, 2], &params, &mut rng, 64);
        assert!(out.success);
    }
}
