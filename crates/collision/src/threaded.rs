//! A genuinely parallel, message-passing implementation of the
//! collision game.
//!
//! [`crate::game::play_game`] simulates the protocol's message counts on
//! one thread. This module runs the *same* protocol across OS threads:
//! processors are partitioned into shards, each shard owns the requests
//! originating in it and answers the queries addressed to it, and all
//! communication travels through channels — no shard ever reads another
//! shard's state directly.
//!
//! Two execution drivers share one shard body:
//!
//! * [`play_game_threaded`] spawns scoped threads for each game — the
//!   original per-game-spawn baseline;
//! * [`play_game_pooled`] broadcasts the shard body onto a persistent
//!   [`WorkerPool`], so a balancer playing a game every phase reuses
//!   the same long-lived workers instead of paying a spawn per game.
//!
//! The protocol is insensitive to message arrival order within a round:
//! a target accepts *all or none* of a round's queries depending only on
//! their count (plus its cumulative accept count), so the outcome is
//! deterministic even though thread scheduling is not. Tests assert
//! bit-equality of both drivers with the sequential implementation for
//! identical seeds.

use crate::game::{play_game, GameOutcome};
use crate::params::CollisionParams;
use pcrlb_faults::{GameFaults, MsgKind};
use pcrlb_sim::{ProcId, SimRng, WorkerPool};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Barrier, Mutex};

/// A query travelling to the shard that owns `target`. `arrival` is
/// the round the message becomes visible at the target — equal to the
/// send round unless the fault layer delayed it.
#[derive(Debug, Clone, Copy)]
struct QueryMsg {
    request: u32,
    query: u32,
    target: ProcId,
    arrival: u32,
}

/// An accept travelling back to the shard that owns request `request`.
#[derive(Debug, Clone, Copy)]
struct AcceptMsg {
    request: u32,
    query: u32,
    arrival: u32,
}

struct RequestState {
    targets: Vec<ProcId>,
    accepted_mask: Vec<bool>,
    /// Earliest round each query may be (re)sent — see
    /// `crate::game::Request::next_send`.
    next_send: Vec<u32>,
    accepts: usize,
    done: bool,
}

/// Everything one shard needs to play its part of the game: its chunk
/// of the request array, its inbound channel ends (std receivers are
/// not cloneable, so each shard owns its own), and its own clones of
/// every outbound sender.
struct ShardCtx<'a> {
    chunk: &'a mut [RequestState],
    query_rx: Receiver<QueryMsg>,
    accept_rx: Receiver<AcceptMsg>,
    query_txs: Vec<Sender<QueryMsg>>,
    accept_txs: Vec<Sender<AcceptMsg>>,
}

/// How the shard bodies get threads.
enum Exec<'a> {
    /// Scoped threads, spawned per game.
    Scoped(usize),
    /// A persistent pool; shard count = worker count.
    Pool(&'a WorkerPool),
}

/// Plays one collision game across `shards` scoped worker threads,
/// returning the same outcome the sequential [`play_game`] produces for
/// the same seed (accepted lists are reported in ascending target
/// order; the sequential order coincides because targets are sampled
/// identically).
///
/// # Panics
/// Panics under the same conditions as [`play_game`].
pub fn play_game_threaded(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
    shards: usize,
) -> GameOutcome {
    play_game_sharded(n, requesters, params, rng, Exec::Scoped(shards), None)
}

/// Like [`play_game_threaded`], over an unreliable network. Because
/// every fault decision is a pure hash of the message coordinates, the
/// outcome is bit-identical to the sequential
/// [`crate::game::play_game_faulty`] for the same seed, fault model,
/// and nonce — regardless of the shard count.
///
/// # Panics
/// Panics under the same conditions as [`play_game`].
pub fn play_game_threaded_faulty(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
    shards: usize,
    faults: GameFaults<'_>,
) -> GameOutcome {
    play_game_sharded(
        n,
        requesters,
        params,
        rng,
        Exec::Scoped(shards),
        Some(faults),
    )
}

/// Like [`play_game_threaded`], but the shard bodies run on `pool`'s
/// persistent workers (one shard per worker, clamped to the request
/// count) instead of freshly spawned threads. Bit-identical to the
/// sequential and scoped-threaded games for the same seed; the win is
/// that a long run pays the thread-spawn cost once, not per game.
///
/// # Panics
/// Panics under the same conditions as [`play_game`].
pub fn play_game_pooled(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
    pool: &WorkerPool,
) -> GameOutcome {
    play_game_sharded(n, requesters, params, rng, Exec::Pool(pool), None)
}

/// Like [`play_game_pooled`], over an unreliable network. See
/// [`play_game_threaded_faulty`] for the determinism guarantee.
///
/// # Panics
/// Panics under the same conditions as [`play_game`].
pub fn play_game_pooled_faulty(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
    pool: &WorkerPool,
    faults: GameFaults<'_>,
) -> GameOutcome {
    play_game_sharded(n, requesters, params, rng, Exec::Pool(pool), Some(faults))
}

fn play_game_sharded(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
    exec: Exec<'_>,
    faults: Option<GameFaults<'_>>,
) -> GameOutcome {
    params.validate().expect("invalid collision parameters");
    assert!(n > params.a, "need n > a distinct targets");
    let shards = match &exec {
        Exec::Scoped(shards) => *shards,
        Exec::Pool(pool) => pool.workers(),
    }
    .clamp(1, requesters.len().max(1));

    if requesters.is_empty() {
        return GameOutcome {
            accepted: Vec::new(),
            rounds_used: 0,
            success: true,
            queries_sent: 0,
            accepts_sent: 0,
            steps: 0,
            queries_dropped: 0,
            accepts_dropped: 0,
            wasted_rounds: 0,
        };
    }

    // Sample all target sets up front with the caller's RNG — the same
    // draws the sequential implementation makes, so both games unfold
    // identically.
    let mut scratch = Vec::with_capacity(params.a + 1);
    let mut requests: Vec<RequestState> = requesters
        .iter()
        .map(|&req| {
            rng.distinct(n, params.a + 1, &mut scratch);
            let targets: Vec<ProcId> = scratch
                .iter()
                .copied()
                .filter(|&t| t != req)
                .take(params.a)
                .collect();
            RequestState {
                accepted_mask: vec![false; targets.len()],
                next_send: vec![0; targets.len()],
                targets,
                accepts: 0,
                done: false,
            }
        })
        .collect();

    let max_rounds = params.rounds(n);
    let reqs_per_shard = requests.len().div_ceil(shards);
    // Shard that owns processor `t` (for query answering).
    let owner = |t: ProcId| -> usize { t * shards / n };
    // Shard that owns request `ri`.
    let req_owner = |ri: usize| -> usize { (ri / reqs_per_shard).min(shards - 1) };

    let (query_txs, query_rxs): (Vec<Sender<QueryMsg>>, Vec<Receiver<QueryMsg>>) =
        (0..shards).map(|_| channel()).unzip();
    let (accept_txs, accept_rxs): (Vec<Sender<AcceptMsg>>, Vec<Receiver<AcceptMsg>>) =
        (0..shards).map(|_| channel()).unzip();

    let barrier = Barrier::new(shards);
    let open_count = AtomicUsize::new(requests.len());
    let queries_sent = AtomicU64::new(0);
    let accepts_sent = AtomicU64::new(0);
    let rounds_used = AtomicU64::new(0);
    let queries_dropped = AtomicU64::new(0);
    let accepts_dropped = AtomicU64::new(0);
    // Accepts *delivered* per round, across all shards — a round with
    // zero deliveries is wasted (same accounting as the sequential
    // game).
    let accepts_per_round: Vec<AtomicU64> = (0..max_rounds).map(|_| AtomicU64::new(0)).collect();

    // Split the request vector into per-shard mutable chunks.
    let mut chunks: Vec<&mut [RequestState]> = Vec::with_capacity(shards);
    {
        let mut rest: &mut [RequestState] = &mut requests;
        for _ in 0..shards {
            let take = reqs_per_shard.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            chunks.push(head);
            rest = tail;
        }
    }

    // Package each shard's context behind a mutex so a shared `Fn(sid)`
    // body — required by the pool's broadcast — can hand each shard
    // exclusive ownership of its chunk and channel ends.
    let ctxs: Vec<Mutex<Option<ShardCtx<'_>>>> = chunks
        .into_iter()
        .zip(query_rxs)
        .zip(accept_rxs)
        .map(|((chunk, query_rx), accept_rx)| {
            Mutex::new(Some(ShardCtx {
                chunk,
                query_rx,
                accept_rx,
                query_txs: query_txs.clone(),
                accept_txs: accept_txs.clone(),
            }))
        })
        .collect();

    let body = |sid: usize| {
        if sid >= shards {
            return; // pool may have more workers than shards
        }
        let ctx = ctxs[sid]
            .lock()
            .expect("shard context poisoned")
            .take()
            .expect("shard context taken twice");

        // Cumulative accepts for targets owned by this shard.
        let mut accepted_by: HashMap<ProcId, usize> = HashMap::new();
        let mut inbox: HashMap<ProcId, Vec<QueryMsg>> = HashMap::new();
        // Delayed messages received early, stashed until their arrival
        // round (faulty runs only).
        let mut pending_queries: Vec<QueryMsg> = Vec::new();
        let mut pending_accepts: Vec<AcceptMsg> = Vec::new();
        let base = sid * reqs_per_shard;

        for round in 0..max_rounds {
            if open_count.load(Ordering::SeqCst) == 0 {
                break;
            }
            if sid == 0 {
                rounds_used.store(round as u64 + 1, Ordering::SeqCst);
            }
            // Phase 1: (re)send unaccepted queries of open requests
            // whose send gate has come. Dropped queries never enter a
            // channel; delayed ones carry a later arrival round.
            let mut sent = 0u64;
            let mut lost = 0u64;
            for (local, req) in ctx.chunk.iter_mut().enumerate() {
                if req.done {
                    continue;
                }
                let ri = (base + local) as u32;
                for (qi, &t) in req.targets.iter().enumerate() {
                    if req.accepted_mask[qi] || req.next_send[qi] > round {
                        continue;
                    }
                    sent += 1;
                    let mut arrival = round;
                    if let Some(f) = faults {
                        if f.dropped(round, ri, qi as u32, MsgKind::Query) {
                            lost += 1;
                            req.next_send[qi] = round + 1;
                            continue;
                        }
                        arrival += f.delay(round, ri, qi as u32, MsgKind::Query);
                    }
                    req.next_send[qi] = arrival + 1;
                    ctx.query_txs[owner(t)]
                        .send(QueryMsg {
                            request: ri,
                            query: qi as u32,
                            target: t,
                            arrival,
                        })
                        .expect("query channel closed");
                }
            }
            queries_sent.fetch_add(sent, Ordering::Relaxed);
            queries_dropped.fetch_add(lost, Ordering::Relaxed);
            barrier.wait(); // all queries of this round delivered

            // Phase 2: answer the queries addressed to targets this
            // shard owns — both fresh arrivals and stashed delayed ones
            // whose round has come.
            inbox.clear();
            for msg in ctx.query_rx.try_iter() {
                if msg.arrival > round {
                    pending_queries.push(msg);
                } else {
                    inbox.entry(msg.target).or_default().push(msg);
                }
            }
            let mut i = 0;
            while i < pending_queries.len() {
                if pending_queries[i].arrival <= round {
                    let msg = pending_queries.swap_remove(i);
                    inbox.entry(msg.target).or_default().push(msg);
                } else {
                    i += 1;
                }
            }
            let mut accepted = 0u64;
            let mut acc_lost = 0u64;
            for (&target, msgs) in inbox.iter() {
                let already = accepted_by.get(&target).copied().unwrap_or(0);
                if already >= params.c || already + msgs.len() > params.c {
                    continue; // collision: answers none
                }
                *accepted_by.entry(target).or_insert(0) += msgs.len();
                for m in msgs {
                    accepted += 1;
                    let mut arrival = round;
                    if let Some(f) = faults {
                        if f.dropped(round, m.request, m.query, MsgKind::Accept) {
                            acc_lost += 1;
                            continue;
                        }
                        arrival += f.delay(round, m.request, m.query, MsgKind::Accept);
                    }
                    ctx.accept_txs[req_owner(m.request as usize)]
                        .send(AcceptMsg {
                            request: m.request,
                            query: m.query,
                            arrival,
                        })
                        .expect("accept channel closed");
                }
            }
            accepts_sent.fetch_add(accepted, Ordering::Relaxed);
            accepts_dropped.fetch_add(acc_lost, Ordering::Relaxed);
            barrier.wait(); // all accepts of this round delivered

            // Phase 3: apply accepts due this round; satisfied
            // requests leave.
            let mut delivered = 0u64;
            let mut apply = |chunk: &mut [RequestState], msg: AcceptMsg| {
                let local = msg.request as usize - base;
                let req = &mut chunk[local];
                if !req.accepted_mask[msg.query as usize] {
                    req.accepted_mask[msg.query as usize] = true;
                    req.accepts += 1;
                    delivered += 1;
                }
            };
            for msg in ctx.accept_rx.try_iter() {
                if msg.arrival > round {
                    pending_accepts.push(msg);
                } else {
                    apply(&mut *ctx.chunk, msg);
                }
            }
            let mut i = 0;
            while i < pending_accepts.len() {
                if pending_accepts[i].arrival <= round {
                    let msg = pending_accepts.swap_remove(i);
                    apply(&mut *ctx.chunk, msg);
                } else {
                    i += 1;
                }
            }
            if delivered > 0 {
                accepts_per_round[round as usize].fetch_add(delivered, Ordering::Relaxed);
            }
            let mut newly_done = 0usize;
            for req in ctx.chunk.iter_mut() {
                if !req.done && req.accepts >= params.b {
                    req.done = true;
                    newly_done += 1;
                }
            }
            open_count.fetch_sub(newly_done, Ordering::SeqCst);
            barrier.wait(); // everyone sees the new open count
        }
    };

    match exec {
        Exec::Scoped(_) => std::thread::scope(|scope| {
            for sid in 0..shards {
                let body = &body;
                scope.spawn(move || body(sid));
            }
        }),
        Exec::Pool(pool) => pool.broadcast(&body),
    }
    drop(ctxs); // release the chunk borrows of `requests`

    let accepted: Vec<Vec<ProcId>> = requests
        .iter()
        .map(|req| {
            req.targets
                .iter()
                .zip(&req.accepted_mask)
                .filter(|(_, &acc)| acc)
                .map(|(&t, _)| t)
                .collect()
        })
        .collect();
    let success = requests.iter().all(|r| r.accepts >= params.b);
    let rounds = rounds_used.load(Ordering::SeqCst) as u32;
    let wasted_rounds = (0..rounds as usize)
        .filter(|&r| accepts_per_round[r].load(Ordering::Relaxed) == 0)
        .count() as u32;

    GameOutcome {
        accepted,
        rounds_used: rounds,
        success,
        queries_sent: queries_sent.load(Ordering::Relaxed),
        accepts_sent: accepts_sent.load(Ordering::Relaxed),
        steps: params.steps_per_round() * rounds as u64,
        queries_dropped: queries_dropped.load(Ordering::Relaxed),
        accepts_dropped: accepts_dropped.load(Ordering::Relaxed),
        wasted_rounds,
    }
}

/// Convenience wrapper asserting agreement between the threaded and the
/// sequential game for a given seed. Returns the (common) outcome.
/// Intended for tests and demos.
pub fn play_game_verified(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    seed: u64,
    shards: usize,
) -> GameOutcome {
    let mut r1 = SimRng::new(seed);
    let mut r2 = SimRng::new(seed);
    let seq = play_game(n, requesters, params, &mut r1);
    let par = play_game_threaded(n, requesters, params, &mut r2, shards);
    assert_eq!(seq.accepted, par.accepted, "threaded game diverged");
    assert_eq!(seq.queries_sent, par.queries_sent);
    assert_eq!(seq.accepts_sent, par.accepts_sent);
    assert_eq!(seq.rounds_used, par.rounds_used);
    par
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_matches_sequential() {
        let params = CollisionParams::lemma1();
        for shards in [1, 2, 4, 7] {
            for seed in 0..10 {
                let requesters: Vec<ProcId> = (0..40).map(|i| i * 3).collect();
                play_game_verified(1024, &requesters, &params, seed, shards);
            }
        }
    }

    #[test]
    fn threaded_matches_sequential_under_contention() {
        // Heavy contention: many requests on a small machine, multiple
        // rounds, failures — the hardest case for determinism.
        let params = CollisionParams::lemma1();
        let requesters: Vec<ProcId> = (0..24).collect();
        for seed in 0..10 {
            play_game_verified(32, &requesters, &params, seed, 4);
        }
    }

    #[test]
    fn pooled_game_matches_sequential_for_fixed_seeds() {
        // One persistent pool, reused across games and seeds — exactly
        // how the balancer drives it phase after phase.
        let params = CollisionParams::lemma1();
        let pool = WorkerPool::new(4);
        let requesters: Vec<ProcId> = (0..40).map(|i| i * 3).collect();
        for seed in 0..10 {
            let mut r1 = SimRng::new(seed);
            let mut r2 = SimRng::new(seed);
            let seq = play_game(1024, &requesters, &params, &mut r1);
            let pooled = play_game_pooled(1024, &requesters, &params, &mut r2, &pool);
            assert_eq!(seq.accepted, pooled.accepted, "seed={seed}");
            assert_eq!(seq.queries_sent, pooled.queries_sent);
            assert_eq!(seq.accepts_sent, pooled.accepts_sent);
            assert_eq!(seq.rounds_used, pooled.rounds_used);
        }
    }

    #[test]
    fn pooled_game_under_contention_matches_sequential() {
        let params = CollisionParams::lemma1();
        let pool = WorkerPool::new(4);
        let requesters: Vec<ProcId> = (0..24).collect();
        for seed in 0..10 {
            let mut r1 = SimRng::new(seed);
            let mut r2 = SimRng::new(seed);
            let seq = play_game(32, &requesters, &params, &mut r1);
            let pooled = play_game_pooled(32, &requesters, &params, &mut r2, &pool);
            assert_eq!(seq.accepted, pooled.accepted, "seed={seed}");
            assert_eq!(seq.rounds_used, pooled.rounds_used);
        }
    }

    #[test]
    fn empty_requesters() {
        let params = CollisionParams::lemma1();
        let mut rng = SimRng::new(1);
        let out = play_game_threaded(64, &[], &params, &mut rng, 4);
        assert!(out.success);
        assert_eq!(out.rounds_used, 0);
        let pool = WorkerPool::new(2);
        let mut rng = SimRng::new(1);
        let out = play_game_pooled(64, &[], &params, &mut rng, &pool);
        assert!(out.success);
    }

    #[test]
    fn faulty_threaded_and_pooled_match_sequential() {
        use crate::game::play_game_faulty;
        use pcrlb_faults::{Bernoulli, BoundedDelay, GameFaults};
        let params = CollisionParams::lemma1();
        let n = 512;
        let requesters: Vec<ProcId> = (0..48).collect();
        let loss = Bernoulli::new(11, 0.15);
        let delay = BoundedDelay::new(13, 0.2, 2);
        let models: [&dyn pcrlb_faults::FaultModel; 2] = [&loss, &delay];
        let pool = WorkerPool::new(4);
        for (mi, &model) in models.iter().enumerate() {
            for seed in 0..6 {
                let gf = GameFaults::new(model, seed * 10 + mi as u64);
                let mut r = SimRng::new(seed);
                let seq = play_game_faulty(n, &requesters, &params, &mut r, gf);
                for shards in [2usize, 4, 7] {
                    let mut r = SimRng::new(seed);
                    let par =
                        play_game_threaded_faulty(n, &requesters, &params, &mut r, shards, gf);
                    assert_eq!(
                        seq.accepted, par.accepted,
                        "model {mi} seed {seed} shards {shards}"
                    );
                    assert_eq!(seq.queries_sent, par.queries_sent);
                    assert_eq!(seq.accepts_sent, par.accepts_sent);
                    assert_eq!(seq.queries_dropped, par.queries_dropped);
                    assert_eq!(seq.accepts_dropped, par.accepts_dropped);
                    assert_eq!(seq.rounds_used, par.rounds_used);
                    assert_eq!(seq.wasted_rounds, par.wasted_rounds);
                }
                let mut r = SimRng::new(seed);
                let pooled = play_game_pooled_faulty(n, &requesters, &params, &mut r, &pool, gf);
                assert_eq!(
                    seq.accepted, pooled.accepted,
                    "model {mi} seed {seed} pooled"
                );
                assert_eq!(seq.queries_dropped, pooled.queries_dropped);
                assert_eq!(seq.accepts_dropped, pooled.accepts_dropped);
                assert_eq!(seq.wasted_rounds, pooled.wasted_rounds);
            }
        }
    }

    #[test]
    fn more_shards_than_requests_is_clamped() {
        let params = CollisionParams::lemma1();
        let mut rng = SimRng::new(2);
        let out = play_game_threaded(256, &[1, 2], &params, &mut rng, 64);
        assert!(out.success);
        // Same for a pool wider than the request list.
        let pool = WorkerPool::new(16);
        let mut rng = SimRng::new(2);
        let out = play_game_pooled(256, &[1, 2], &params, &mut rng, &pool);
        assert!(out.success);
    }
}
