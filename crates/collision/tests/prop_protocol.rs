//! Property-based tests of the collision protocol's guarantees over
//! randomized parameters, request counts, and seeds.

use pcrlb_collision::{play_game, BalanceForest, CollisionParams};
use pcrlb_sim::SimRng;
use proptest::prelude::*;
use std::collections::HashMap;

/// Strategy generating valid collision parameters (the constructor's
/// constraints: 2 <= a, 1 <= b < a, c >= 1, c(a-b) >= 2).
fn valid_params() -> impl Strategy<Value = CollisionParams> {
    (2usize..8, 1usize..6, 1usize..3, 0.1f64..0.9)
        .prop_filter_map("must satisfy protocol constraints", |(a, b, c, eps)| {
            CollisionParams::new(a, b, c, eps).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two structural guarantees of the protocol hold for every
    /// outcome, successful or not:
    /// 1. no processor accepts more than `c` queries in one game;
    /// 2. a request marked successful has at least `b` accepts, all at
    ///    distinct processors, none of them the requester.
    #[test]
    fn structural_guarantees(
        params in valid_params(),
        seed in any::<u64>(),
        n_exp in 6u32..12,
        req_frac in 0.01f64..1.0,
    ) {
        let n = 1usize << n_exp;
        let budget = params.max_requests(n).max(1);
        let requests = ((budget as f64) * req_frac).ceil() as usize;
        let requesters: Vec<usize> = (0..requests.min(n / 2)).collect();
        let mut rng = SimRng::new(seed);
        let out = play_game(n, &requesters, &params, &mut rng);

        let mut per_target: HashMap<usize, usize> = HashMap::new();
        for (ri, acc) in out.accepted.iter().enumerate() {
            // Accepted targets are distinct within a request and never
            // the requester itself.
            let mut sorted = acc.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), acc.len());
            prop_assert!(!acc.contains(&requesters[ri]));
            for &t in acc {
                *per_target.entry(t).or_insert(0) += 1;
            }
        }
        for (&t, &cnt) in &per_target {
            prop_assert!(cnt <= params.c, "target {} accepted {} > c = {}", t, cnt, params.c);
        }
        if out.success {
            prop_assert!(out.accepted.iter().all(|a| a.len() >= params.b));
        }
        prop_assert!(out.rounds_used <= params.rounds(n));
        // Message accounting sanity: at most a queries per open request
        // per round.
        prop_assert!(
            out.queries_sent
                <= (params.a * requesters.len()) as u64 * out.rounds_used.max(1) as u64
        );
        prop_assert_eq!(out.steps, params.steps_per_round() * out.rounds_used as u64);
    }

    /// Within the analyzed request budget and Lemma 1 parameters, the
    /// protocol essentially always succeeds at moderate sizes.
    #[test]
    fn lemma1_budget_succeeds(seed in any::<u64>(), n_exp in 9u32..13) {
        let n = 1usize << n_exp;
        let params = CollisionParams::lemma1();
        let requests = params.max_requests(n) / 2;
        let requesters: Vec<usize> = (0..requests).collect();
        let mut rng = SimRng::new(seed);
        let out = play_game(n, &requesters, &params, &mut rng);
        prop_assert!(out.success, "n = {}, requests = {}", n, requests);
    }

    /// Forest search invariants for arbitrary heavy/light splits:
    /// partners are distinct, drawn from the light set, each root
    /// matched at most once, and matched + unmatched = heavy.
    #[test]
    fn forest_invariants(
        seed in any::<u64>(),
        heavy_count in 1usize..24,
        light_frac in 0.0f64..1.0,
        depth in 1u32..5,
    ) {
        let n = 512;
        let light_start = heavy_count;
        let light_count = (((n - heavy_count) as f64) * light_frac) as usize;
        let heavy: Vec<usize> = (0..heavy_count).collect();
        let light: Vec<usize> = (light_start..light_start + light_count).collect();
        let mut forest = BalanceForest::new(n);
        let mut rng = SimRng::new(seed);
        let out = forest.search(&heavy, &light, &CollisionParams::lemma1(), depth, &mut rng);

        prop_assert_eq!(out.matches.len() + out.unmatched.len(), heavy_count);
        let mut partners: Vec<usize> = out.matches.iter().map(|m| m.light).collect();
        let before = partners.len();
        partners.sort_unstable();
        partners.dedup();
        prop_assert_eq!(partners.len(), before, "duplicate partner");
        prop_assert!(partners.iter().all(|p| light.contains(p)));
        let mut roots: Vec<usize> = out.matches.iter().map(|m| m.heavy).collect();
        roots.sort_unstable();
        roots.dedup();
        prop_assert_eq!(roots.len(), before, "root matched twice");
        prop_assert!(out.matches.iter().all(|m| m.level < depth));
        // Requests attributed to roots sum to the total.
        let attributed: u64 = out.requests_per_root.iter().map(|&r| r as u64).sum();
        prop_assert_eq!(attributed, out.stats.requests);
    }
}
