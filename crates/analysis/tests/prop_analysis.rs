//! Property-based tests of the analysis toolkit.

use pcrlb_analysis::{fit_geometric_ratio, quantile, BirthDeath, Histogram, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Welford merging equals one-pass accumulation for arbitrary
    /// splits of arbitrary data.
    #[test]
    fn summary_merge_associative(
        data in proptest::collection::vec(-1e6f64..1e6, 1..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let whole = Summary::from_iter(data.iter().copied());
        let mut left = Summary::from_iter(data[..split].iter().copied());
        let right = Summary::from_iter(data[split..].iter().copied());
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.variance() - whole.variance()).abs()
                < 1e-6 * (1.0 + whole.variance().abs())
        );
    }

    /// The steady-state pmf of every valid chain sums to ~1 and its
    /// mean matches the closed form.
    #[test]
    fn birth_death_pmf_normalizes(gain in 0.01f64..0.45, extra in 0.02f64..0.5) {
        let loss = (gain + extra).min(1.0);
        let chain = BirthDeath::new(gain, loss);
        let k_max = 4000;
        let total: f64 = chain.steady_state(k_max).iter().sum();
        // Truncation error shrinks with ratio^k; only assert when the
        // tail is negligible at k_max.
        if chain.tail(k_max) < 1e-9 {
            prop_assert!((total - 1.0).abs() < 1e-6, "sum = {}", total);
        }
        prop_assert!(chain.expected_load() >= 0.0);
        prop_assert!(chain.ratio() < 1.0);
    }

    /// Histogram quantiles are consistent with tail probabilities.
    #[test]
    fn histogram_quantile_tail_consistency(
        values in proptest::collection::vec(0u64..128, 1..300),
        p in 0.01f64..0.99,
    ) {
        let h = Histogram::from_values(values.iter().copied());
        let q = h.quantile(p);
        // P(X <= q) >= p by definition of the quantile...
        let at_most = 1.0 - h.tail_probability(q);
        prop_assert!(at_most >= p - 1e-9, "P(X<={}) = {} < p = {}", q, at_most, p);
        // ...and q is minimal (when q > 0).
        if q > 0 {
            let below = 1.0 - h.tail_probability(q - 1);
            prop_assert!(below < p + 1e-9);
        }
    }

    /// Fitting a synthetic geometric histogram recovers its ratio.
    #[test]
    fn geometric_fit_recovers_ratio(r_pct in 10u32..95) {
        let r = r_pct as f64 / 100.0;
        let counts: Vec<u64> = (0..14)
            .map(|k| (1e8 * (1.0 - r) * r.powi(k)).round() as u64)
            .collect();
        let fitted = fit_geometric_ratio(&counts).unwrap();
        prop_assert!((fitted - r).abs() < 0.03, "true {} fitted {}", r, fitted);
    }

    /// slice quantile respects ordering: p1 <= p2 => q(p1) <= q(p2).
    #[test]
    fn quantile_is_monotone(
        values in proptest::collection::vec(-1e3f64..1e3, 1..100),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let q_lo = quantile(&values, lo).unwrap();
        let q_hi = quantile(&values, hi).unwrap();
        prop_assert!(q_lo <= q_hi);
    }
}
