//! Plain-text and Markdown table rendering for the experiment harness.
//!
//! Every experiment in `pcrlb-bench` prints its results through
//! [`Table`] so `EXPERIMENTS.md` rows can be pasted verbatim from the
//! harness output.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for building a row out of `Display` items.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Renders with space-aligned columns (right-aligned data, as is
    /// conventional for numeric tables).
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", h, width = w[i]);
        }
        out.push('\n');
        for (i, _) in self.headers.iter().enumerate() {
            let _ = write!(out, "{}  ", "-".repeat(w[i]));
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = w[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders as RFC-4180-style CSV (quotes cells containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Parses column `col` of every row as `f64`, skipping rows whose
    /// cell does not parse (useful for feeding numeric columns to
    /// plots). Returns `(row index, value)` pairs.
    pub fn numeric_column(&self, col: usize) -> Vec<(usize, f64)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, row)| {
                row.get(col)
                    .and_then(|c| c.trim().trim_end_matches('%').parse::<f64>().ok())
                    .map(|v| (i, v))
            })
            .collect()
    }

    /// Renders as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with `digits` decimal places (helper for rows).
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a probability/rate compactly: exact zero as `0`, tiny values
/// in scientific notation, the rest with 4 places.
pub fn fmt_rate(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v < 1e-3 {
        format!("{v:.1e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns_columns() {
        let mut t = Table::new(&["n", "max"]);
        t.row(&["256".into(), "9".into()]);
        t.row(&["65536".into(), "16".into()]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n'));
        assert!(lines[2].trim_start().starts_with("256"));
        // All rows have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(&["a", "b"]);
        t.row_display(&[1, 2]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_display(&[1]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["plain".into(), "with,comma".into()]);
        t.row(&["with\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn numeric_column_extraction() {
        let mut t = Table::new(&["n", "v"]);
        t.row(&["256".into(), "1.5".into()]);
        t.row(&["oops".into(), "2.5".into()]);
        t.row(&["1024".into(), "n/a".into()]);
        assert_eq!(t.numeric_column(0), vec![(0, 256.0), (2, 1024.0)]);
        assert_eq!(t.numeric_column(1), vec![(0, 1.5), (1, 2.5)]);
        assert_eq!(t.numeric_column(9), vec![]);
        assert_eq!(t.headers().len(), 2);
        assert_eq!(t.rows().len(), 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_rate(0.0), "0");
        assert_eq!(fmt_rate(0.5), "0.5000");
        assert!(fmt_rate(1e-6).contains('e'));
    }
}
