//! The birth–death Markov chain of Lemma 2.
//!
//! For the `Single` model an unbalanced processor's load is a random
//! walk on `0, 1, 2, …` with
//!
//! * gain probability `p_g = p(1 − q)` (task generated, none consumed),
//! * loss probability `p_l = q(1 − p)` (task consumed, none generated),
//!
//! whose steady state is geometric: `v_i = (1 − r)·r^i` with
//! `r = p_g / p_l < 1`. Lemma 2 concludes each node holds load `k` with
//! probability `(1/c)^k` and the system load is `O(n)` w.h.p.
//!
//! [`BirthDeath`] computes the exact distribution so experiments can
//! compare measured histograms against it (experiment E2).

/// A birth–death chain with constant gain/loss probabilities.
///
/// ```
/// use pcrlb_analysis::BirthDeath;
///
/// let chain = BirthDeath::from_single(0.4, 0.5);
/// assert!((chain.expected_load() - 2.0).abs() < 1e-12);
/// // P(load >= k) decays geometrically — the Lemma 2 shape.
/// assert!(chain.tail(10) < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BirthDeath {
    /// Per-step probability of moving up.
    pub gain: f64,
    /// Per-step probability of moving down (when above zero).
    pub loss: f64,
}

impl BirthDeath {
    /// Creates the chain; requires `0 < gain < loss ≤ 1` (positive
    /// recurrence / steady state).
    pub fn new(gain: f64, loss: f64) -> Self {
        assert!(gain > 0.0 && loss > 0.0, "probabilities must be positive");
        assert!(loss <= 1.0 && gain < 1.0, "probabilities must be at most 1");
        assert!(gain < loss, "steady state needs gain < loss");
        BirthDeath { gain, loss }
    }

    /// The chain induced by the `Single` model with generation
    /// probability `p` and consumption probability `q`.
    pub fn from_single(p: f64, q: f64) -> Self {
        BirthDeath::new(p * (1.0 - q), q * (1.0 - p))
    }

    /// The geometric decay ratio `r = gain / loss` (the paper's `1/c`).
    pub fn ratio(&self) -> f64 {
        self.gain / self.loss
    }

    /// Steady-state probability of load exactly `k`:
    /// `v_k = (1 − r)·r^k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let r = self.ratio();
        (1.0 - r) * r.powi(k as i32)
    }

    /// Steady-state probability of load at least `k`: `r^k`.
    pub fn tail(&self, k: usize) -> f64 {
        self.ratio().powi(k as i32)
    }

    /// Expected steady-state load `r / (1 − r)`.
    pub fn expected_load(&self) -> f64 {
        let r = self.ratio();
        r / (1.0 - r)
    }

    /// The first `k_max + 1` steady-state probabilities.
    pub fn steady_state(&self, k_max: usize) -> Vec<f64> {
        (0..=k_max).map(|k| self.pmf(k)).collect()
    }

    /// The load `k` at which the tail drops below `prob` —
    /// `⌈log prob / log r⌉`. For `prob = 1/n` this is the `O(log n)`
    /// unbalanced max-load scale of §5.
    pub fn quantile(&self, prob: f64) -> usize {
        assert!(prob > 0.0 && prob < 1.0);
        (prob.ln() / self.ratio().ln()).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_chain() -> BirthDeath {
        // Single(p = 0.4, q = 0.5): p_g = 0.2, p_l = 0.3.
        BirthDeath::from_single(0.4, 0.5)
    }

    #[test]
    fn from_single_matches_paper_formulas() {
        let c = paper_chain();
        assert!((c.gain - 0.2).abs() < 1e-12);
        assert!((c.loss - 0.3).abs() < 1e-12);
        assert!((c.ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let c = paper_chain();
        let total: f64 = c.steady_state(500).iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
    }

    #[test]
    fn tail_is_consistent_with_pmf() {
        let c = paper_chain();
        for k in [0usize, 1, 3, 10] {
            let from_pmf: f64 = (k..500).map(|i| c.pmf(i)).sum();
            assert!((c.tail(k) - from_pmf).abs() < 1e-9);
        }
        assert!((c.tail(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_load_matches_sum() {
        let c = paper_chain();
        let by_sum: f64 = (0..2000).map(|k| k as f64 * c.pmf(k)).sum();
        assert!((c.expected_load() - by_sum).abs() < 1e-6);
        // r = 2/3 => E = 2.
        assert!((c.expected_load() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_tail() {
        let c = paper_chain();
        let k = c.quantile(1e-6);
        assert!(c.tail(k) <= 1e-6);
        assert!(c.tail(k.saturating_sub(1)) > 1e-6);
    }

    #[test]
    fn quantile_grows_logarithmically() {
        // The §5 remark: without balancing the max load is O(log n)
        // w.h.p. — the 1/n quantile grows linearly in log n.
        let c = paper_chain();
        let q1 = c.quantile(1.0 / 1024.0);
        let q2 = c.quantile(1.0 / (1024.0 * 1024.0));
        assert!(q2 >= 2 * q1 - 2 && q2 <= 2 * q1 + 2, "q1={q1} q2={q2}");
    }

    #[test]
    #[should_panic(expected = "gain < loss")]
    fn rejects_unstable_chain() {
        BirthDeath::new(0.3, 0.2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_gain() {
        BirthDeath::new(0.0, 0.5);
    }
}
