//! # pcrlb-analysis — measurement toolkit
//!
//! Statistical machinery the experiments use to compare measurements
//! against the paper's predictions:
//!
//! * [`BirthDeath`] — the exact Lemma 2 steady-state distribution of an
//!   unbalanced processor's load under the `Single` model;
//! * [`Summary`] / [`quantile`] — streaming summary statistics;
//! * [`Histogram`] — integer histograms with tails and quantiles;
//! * [`fit_geometric_ratio`] — recovers the geometric decay ratio from
//!   an empirical load histogram (validating Lemma 2's shape);
//! * [`WhpCheck`] — per-trial extreme collection with violation-rate
//!   evaluation for the paper's w.h.p. claims;
//! * [`Table`] — text/Markdown rendering used by the harness so
//!   `EXPERIMENTS.md` rows are copy-paste reproducible;
//! * [`chernoff`] — the Chernoff–Hoeffding bounds the paper's lemmas
//!   invoke, so predicted failure probabilities can sit next to
//!   measured violation rates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chernoff;
pub mod hist;
pub mod markov;
pub mod plot;
pub mod queueing;
pub mod series;
pub mod stats;
pub mod table;
pub mod tail;
pub mod whp;

pub use chernoff::{hoeffding, lower_tail, upper_tail, whp_exponent};
pub use hist::Histogram;
pub use markov::BirthDeath;
pub use plot::{LinePlot, Scale, Series};
pub use queueing::MM1;
pub use series::{sparkline, TimeSeries};
pub use stats::{quantile, Summary};
pub use table::{fmt_f, fmt_rate, Table};
pub use tail::{fit_geometric_ratio, geometric_fit_r2};
pub use whp::WhpCheck;
