//! Minimal SVG line charts — dependency-free figure generation for the
//! experiment harness (`pcrlb-experiments figures`).
//!
//! Produces self-contained SVG files: axes, ticks, grid, multiple
//! series with markers, and a legend. Optional log₂ scaling on either
//! axis, which growth-shape figures (max load vs `n`) need.

use std::fmt::Write as _;

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-2 logarithmic axis (values must be positive).
    Log2,
}

impl Scale {
    fn apply(&self, v: f64) -> f64 {
        match self {
            Scale::Linear => v,
            Scale::Log2 => v.max(f64::MIN_POSITIVE).log2(),
        }
    }
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points, in drawing order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A line chart.
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    x_scale: Scale,
    y_scale: Scale,
    series: Vec<Series>,
}

/// Categorical palette (distinct, colour-blind-friendly-ish).
const COLORS: [&str; 6] = [
    "#4e79a7", "#e15759", "#59a14f", "#f28e2b", "#b07aa1", "#76b7b2",
];

impl LinePlot {
    /// Creates an empty plot.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LinePlot {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
        }
    }

    /// Sets the x-axis scale.
    pub fn x_scale(mut self, s: Scale) -> Self {
        self.x_scale = s;
        self
    }

    /// Sets the y-axis scale.
    pub fn y_scale(mut self, s: Scale) -> Self {
        self.y_scale = s;
        self
    }

    /// Adds a series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Renders the SVG document.
    ///
    /// # Panics
    /// Panics when no series has any points (an empty figure is a
    /// harness bug, not a rendering case).
    pub fn render(&self) -> String {
        let (w, h) = (640.0f64, 420.0f64);
        let (ml, mr, mt, mb) = (64.0, 160.0, 44.0, 52.0); // margins
        let plot_w = w - ml - mr;
        let plot_h = h - mt - mb;

        // Scaled data bounds.
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                xs.push(self.x_scale.apply(x));
                ys.push(self.y_scale.apply(y));
            }
        }
        assert!(!xs.is_empty(), "plot '{}' has no points", self.title);
        let (x_min, x_max) = bounds(&xs);
        let (y_min, y_max) = bounds(&ys);
        let x_span = (x_max - x_min).max(1e-9);
        let y_span = (y_max - y_min).max(1e-9);
        let px = |x: f64| ml + (self.x_scale.apply(x) - x_min) / x_span * plot_w;
        let py = |y: f64| mt + plot_h - (self.y_scale.apply(y) - y_min) / y_span * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"##
        );
        let _ = write!(
            svg,
            r##"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"##,
            ml + plot_w / 2.0,
            xml_escape(&self.title)
        );

        // Grid + ticks (5 divisions each way, values in scaled space
        // mapped back to labels).
        for i in 0..=5 {
            let frac = i as f64 / 5.0;
            let gx = ml + frac * plot_w;
            let gy = mt + plot_h - frac * plot_h;
            let xv = x_min + frac * x_span;
            let yv = y_min + frac * y_span;
            let x_label = match self.x_scale {
                Scale::Linear => format_tick(xv),
                Scale::Log2 => format!("2^{}", xv.round() as i64),
            };
            let y_label = match self.y_scale {
                Scale::Linear => format_tick(yv),
                Scale::Log2 => format!("2^{}", yv.round() as i64),
            };
            let _ = write!(
                svg,
                r##"<line x1="{gx}" y1="{mt}" x2="{gx}" y2="{}" stroke="#e0e0e0"/><line x1="{ml}" y1="{gy}" x2="{}" y2="{gy}" stroke="#e0e0e0"/>"##,
                mt + plot_h,
                ml + plot_w
            );
            let _ = write!(
                svg,
                r##"<text x="{gx}" y="{}" text-anchor="middle" fill="#555">{x_label}</text><text x="{}" y="{}" text-anchor="end" fill="#555">{y_label}</text>"##,
                mt + plot_h + 16.0,
                ml - 6.0,
                gy + 4.0
            );
        }
        // Axis labels.
        let _ = write!(
            svg,
            r##"<text x="{}" y="{}" text-anchor="middle" fill="#333">{}</text><text x="16" y="{}" text-anchor="middle" fill="#333" transform="rotate(-90 16 {})">{}</text>"##,
            ml + plot_w / 2.0,
            h - 12.0,
            xml_escape(&self.x_label),
            mt + plot_h / 2.0,
            mt + plot_h / 2.0,
            xml_escape(&self.y_label)
        );
        // Frame.
        let _ = write!(
            svg,
            r##"<rect x="{ml}" y="{mt}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#888"/>"##
        );

        // Series.
        for (si, s) in self.series.iter().enumerate() {
            let color = COLORS[si % COLORS.len()];
            let path: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect();
            if path.len() > 1 {
                let _ = write!(
                    svg,
                    r##"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"##,
                    path.join(" ")
                );
            }
            for &(x, y) in &s.points {
                let _ = write!(
                    svg,
                    r##"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"##,
                    px(x),
                    py(y)
                );
            }
            // Legend entry.
            let ly = mt + 8.0 + si as f64 * 18.0;
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}" fill="#333">{}</text>"##,
                w - mr + 10.0,
                w - mr + 30.0,
                w - mr + 36.0,
                ly + 4.0,
                xml_escape(&s.label)
            );
        }

        svg.push_str("</svg>");
        svg
    }
}

fn bounds(vals: &[f64]) -> (f64, f64) {
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < 1e-12 {
        (min - 1.0, max + 1.0)
    } else {
        (min, max)
    }
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plot() -> LinePlot {
        LinePlot::new("Max load vs n", "processors", "max load")
            .x_scale(Scale::Log2)
            .series(Series::new(
                "balanced",
                vec![(256.0, 11.0), (1024.0, 9.0), (4096.0, 9.0)],
            ))
            .series(Series::new(
                "unbalanced",
                vec![(256.0, 38.0), (1024.0, 37.0)],
            ))
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = sample_plot().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 5);
        assert!(svg.contains("balanced"));
        assert!(svg.contains("unbalanced"));
        assert!(svg.contains("2^")); // log ticks
    }

    #[test]
    fn escapes_xml_in_labels() {
        let svg = LinePlot::new("a < b & c", "x", "y")
            .series(Series::new("s<1>", vec![(0.0, 0.0), (1.0, 1.0)]))
            .render();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn degenerate_single_point_does_not_panic() {
        let svg = LinePlot::new("p", "x", "y")
            .series(Series::new("one", vec![(5.0, 5.0)]))
            .render();
        assert!(svg.contains("<circle"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_plot_panics() {
        LinePlot::new("p", "x", "y").render();
    }

    #[test]
    fn log_scale_spreads_powers_evenly() {
        // With log2 x-scale, 256 -> 1024 -> 4096 are equally spaced:
        // extract the circle x positions of the first series.
        let svg = LinePlot::new("p", "x", "y")
            .x_scale(Scale::Log2)
            .series(Series::new(
                "s",
                vec![(256.0, 1.0), (1024.0, 1.0), (4096.0, 1.0)],
            ))
            .render();
        let xs: Vec<f64> = svg
            .match_indices("<circle cx=\"")
            .map(|(i, _)| {
                let rest = &svg[i + 12..];
                let end = rest.find('"').unwrap();
                rest[..end].parse::<f64>().unwrap()
            })
            .collect();
        assert_eq!(xs.len(), 3);
        let d1 = xs[1] - xs[0];
        let d2 = xs[2] - xs[1];
        assert!((d1 - d2).abs() < 0.5, "log ticks not even: {d1} vs {d2}");
    }
}
