//! Closed-form M/M/1 queueing theory.
//!
//! The supermarket baseline's `d = 1` case is `n` independent M/M/1
//! queues, for which everything is known exactly. These formulas give
//! the experiments a ground truth: the event-driven simulator must
//! reproduce them (test `mm1_sojourn_matches_queueing_theory`), which
//! certifies the simulator before it is trusted for `d ≥ 2`, where no
//! closed form exists.

/// An M/M/1 queue with arrival rate `lambda` and service rate `mu`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1 {
    /// Arrival rate.
    pub lambda: f64,
    /// Service rate.
    pub mu: f64,
}

impl MM1 {
    /// Creates the queue; requires `0 < lambda < mu` (stability).
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda > 0.0, "arrival rate must be positive");
        assert!(lambda < mu, "stability requires lambda < mu");
        MM1 { lambda, mu }
    }

    /// Utilization `ρ = λ/μ`.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Expected number in system `L = ρ/(1−ρ)`.
    pub fn mean_in_system(&self) -> f64 {
        let r = self.rho();
        r / (1.0 - r)
    }

    /// Expected sojourn (wait + service) `W = 1/(μ−λ)` (Little's law:
    /// `L = λW`).
    pub fn mean_sojourn(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Steady-state `P(exactly k in system) = (1−ρ)ρ^k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let r = self.rho();
        (1.0 - r) * r.powi(k as i32)
    }

    /// Steady-state `P(at least k in system) = ρ^k`.
    pub fn tail(&self, k: usize) -> f64 {
        self.rho().powi(k as i32)
    }

    /// The `1/n` quantile of the per-queue maximum: with `n` independent
    /// queues, the expected max queue length scales like
    /// `log n / log(1/ρ)` — the `d = 1` baseline the supermarket model's
    /// `O(log log n)` beats exponentially.
    pub fn expected_max_over(&self, n: usize) -> f64 {
        (n.max(2) as f64).ln() / (1.0 / self.rho()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values_at_half_load() {
        let q = MM1::new(0.5, 1.0);
        assert!((q.rho() - 0.5).abs() < 1e-12);
        assert!((q.mean_in_system() - 1.0).abs() < 1e-12);
        assert!((q.mean_sojourn() - 2.0).abs() < 1e-12);
        assert!((q.pmf(0) - 0.5).abs() < 1e-12);
        assert!((q.tail(3) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn littles_law_holds() {
        for (l, m) in [(0.3, 1.0), (0.7, 1.0), (1.4, 2.0)] {
            let q = MM1::new(l, m);
            assert!((q.mean_in_system() - q.lambda * q.mean_sojourn()).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let q = MM1::new(0.7, 1.0);
        let total: f64 = (0..2000).map(|k| q.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_grows_logarithmically_in_n() {
        let q = MM1::new(0.7, 1.0);
        let m1 = q.expected_max_over(1 << 10);
        let m2 = q.expected_max_over(1 << 20);
        assert!((m2 / m1 - 2.0).abs() < 0.01, "log n scaling broken");
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn rejects_overload() {
        MM1::new(1.0, 1.0);
    }
}
