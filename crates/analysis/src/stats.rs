//! Summary statistics for experiment outputs.

/// Streaming mean/variance/min/max (Welford's algorithm — numerically
/// stable for the long accumulations experiments produce).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Summarizes an iterator of observations.
    #[allow(clippy::should_implement_trait)] // inherent ctor, not `FromIterator`
    pub fn from_iter(values: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Summary::new();
        for v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Normal-approximation 95% confidence half-width of the mean
    /// (`1.96·σ/√count`; 0 with fewer than 2 observations).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Merges another summary into this one (parallel aggregation).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// `p`-quantile (0 ≤ p ≤ 1) of an unsorted slice using the
/// nearest-rank method. Returns `None` for empty input.
pub fn quantile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&p), "quantile p outside [0,1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_iter([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_iter([7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(7.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::from_iter(all.iter().copied());
        let mut left = Summary::from_iter(all[..37].iter().copied());
        let right = Summary::from_iter(all[37..].iter().copied());
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::from_iter([1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.9), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile p")]
    fn quantile_rejects_bad_p() {
        quantile(&[1.0], 1.5);
    }
}
