//! Empirical "with high probability" checking.
//!
//! The paper's statements hold with probability `1 − n^{-c}`. An
//! experiment can't verify an exponent, but it can (a) run many
//! independent trials and report the violation fraction of a claimed
//! bound, and (b) check that the violation fraction *shrinks* as `n`
//! grows. [`WhpCheck`] collects the per-trial extremes and answers both.

/// Collects one observed value per independent trial and evaluates a
/// bound against them.
#[derive(Debug, Clone, Default)]
pub struct WhpCheck {
    observations: Vec<f64>,
}

impl WhpCheck {
    /// An empty check.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial's observed extreme (e.g. max load over a run).
    pub fn record(&mut self, value: f64) {
        self.observations.push(value);
    }

    /// Number of trials recorded.
    pub fn trials(&self) -> usize {
        self.observations.len()
    }

    /// Fraction of trials violating `value <= bound`.
    pub fn violation_rate(&self, bound: f64) -> f64 {
        if self.observations.is_empty() {
            return 0.0;
        }
        let violations = self.observations.iter().filter(|&&v| v > bound).count();
        violations as f64 / self.observations.len() as f64
    }

    /// Largest observation across all trials (`None` when empty).
    pub fn worst(&self) -> Option<f64> {
        self.observations
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    }

    /// Mean observation.
    pub fn mean(&self) -> f64 {
        if self.observations.is_empty() {
            0.0
        } else {
            self.observations.iter().sum::<f64>() / self.observations.len() as f64
        }
    }

    /// A one-sided 95% Clopper–Pearson-style upper bound on the true
    /// violation probability when **zero** violations were observed:
    /// `1 - 0.05^(1/trials)`. For `k > 0` violations it falls back to
    /// the point estimate (adequate for shape checks).
    pub fn violation_upper_bound(&self, bound: f64) -> f64 {
        let rate = self.violation_rate(bound);
        if rate > 0.0 || self.observations.is_empty() {
            return rate;
        }
        1.0 - 0.05f64.powf(1.0 / self.observations.len() as f64)
    }

    /// All observations (for histogramming).
    pub fn observations(&self) -> &[f64] {
        &self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_rate_counts_exceedances() {
        let mut c = WhpCheck::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            c.record(v);
        }
        assert_eq!(c.trials(), 4);
        assert!((c.violation_rate(3.0) - 0.25).abs() < 1e-12);
        assert_eq!(c.violation_rate(10.0), 0.0);
        assert_eq!(c.worst(), Some(10.0));
        assert!((c.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_check_is_sane() {
        let c = WhpCheck::new();
        assert_eq!(c.violation_rate(1.0), 0.0);
        assert_eq!(c.worst(), None);
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.violation_upper_bound(1.0), 0.0);
    }

    #[test]
    fn zero_violation_upper_bound_shrinks_with_trials() {
        let mut few = WhpCheck::new();
        let mut many = WhpCheck::new();
        for i in 0..5 {
            few.record(i as f64);
        }
        for i in 0..500 {
            many.record((i % 5) as f64);
        }
        let ub_few = few.violation_upper_bound(10.0);
        let ub_many = many.violation_upper_bound(10.0);
        assert!(ub_many < ub_few);
        assert!(ub_many < 0.01);
    }

    #[test]
    fn upper_bound_is_point_estimate_when_violated() {
        let mut c = WhpCheck::new();
        c.record(5.0);
        c.record(1.0);
        assert!((c.violation_upper_bound(4.0) - 0.5).abs() < 1e-12);
    }
}
