//! Geometric-tail fitting.
//!
//! Lemma 2 predicts the unbalanced per-processor load distribution
//! decays geometrically: `P(load = k) ∝ r^k`. [`fit_geometric_ratio`]
//! recovers `r` from an empirical histogram by least-squares regression
//! of `ln count_k` on `k`, so experiment E2 can compare the fitted ratio
//! against the exact `p_g/p_l` of the Markov chain.

/// Least-squares estimate of the geometric decay ratio `r` from bucket
/// counts (`counts[k]` = observations of value `k`). Buckets with zero
/// count are skipped; at least two non-empty buckets are required.
/// Returns `None` when the data cannot identify a ratio.
pub fn fit_geometric_ratio(counts: &[u64]) -> Option<f64> {
    let points: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(k, &c)| (k as f64, (c as f64).ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(slope.exp())
}

/// Coefficient of determination (R²) of the geometric fit — how well a
/// straight line explains `ln count_k`. Close to 1 means the empirical
/// distribution really is geometric.
pub fn geometric_fit_r2(counts: &[u64]) -> Option<f64> {
    let ratio = fit_geometric_ratio(counts)?;
    let slope = ratio.ln();
    let points: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(k, &c)| (k as f64, (c as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let intercept = mean_y - slope * mean_x;
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| {
            let pred = slope * x + intercept;
            (y - pred) * (y - pred)
        })
        .sum();
    let ss_tot: f64 = points
        .iter()
        .map(|(_, y)| (y - mean_y) * (y - mean_y))
        .sum();
    if ss_tot < 1e-12 {
        return Some(1.0);
    }
    Some(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric_counts(r: f64, total: f64, k_max: usize) -> Vec<u64> {
        (0..=k_max)
            .map(|k| (total * (1.0 - r) * r.powi(k as i32)).round() as u64)
            .collect()
    }

    #[test]
    fn recovers_exact_geometric() {
        for r in [0.3, 0.5, 0.667, 0.9] {
            let counts = geometric_counts(r, 1e7, 12);
            let fit = fit_geometric_ratio(&counts).unwrap();
            assert!((fit - r).abs() < 0.02, "true ratio {r}, fitted {fit}");
            let r2 = geometric_fit_r2(&counts).unwrap();
            assert!(r2 > 0.999, "R² {r2} too low for exact data");
        }
    }

    #[test]
    fn skips_zero_buckets() {
        let counts = [100u64, 0, 25, 0, 6]; // r ≈ 0.5 per two steps
        let fit = fit_geometric_ratio(&counts).unwrap();
        assert!((fit - 0.5).abs() < 0.05, "fitted {fit}");
    }

    #[test]
    fn insufficient_data_returns_none() {
        assert_eq!(fit_geometric_ratio(&[]), None);
        assert_eq!(fit_geometric_ratio(&[5]), None);
        assert_eq!(fit_geometric_ratio(&[0, 0, 7, 0]), None);
    }

    #[test]
    fn non_geometric_data_scores_low_r2() {
        // A flat distribution is maximally non-geometric after the
        // first bucket... actually flat IS geometric with r=1; use a
        // V-shape instead.
        let counts = [1000u64, 10, 1000, 10, 1000];
        let r2 = geometric_fit_r2(&counts).unwrap();
        assert!(r2 < 0.5, "V-shaped data should fit poorly, R² = {r2}");
    }

    #[test]
    fn growing_counts_fit_ratio_above_one() {
        let counts = [10u64, 20, 40, 80];
        let fit = fit_geometric_ratio(&counts).unwrap();
        assert!((fit - 2.0).abs() < 0.05);
    }
}
