//! Time series of per-step observations, with downsampling and
//! terminal sparklines for quick visual inspection of runs.

/// A time series sampled every `every` steps.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    every: u64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series that keeps one value per `every` steps.
    pub fn new(every: u64) -> Self {
        assert!(every >= 1, "sampling interval must be positive");
        TimeSeries {
            every,
            values: Vec::new(),
        }
    }

    /// Offers an observation for `step`; kept when `step` is a multiple
    /// of the sampling interval. Returns true when recorded.
    pub fn offer(&mut self, step: u64, value: f64) -> bool {
        if step.is_multiple_of(self.every) {
            self.values.push(value);
            true
        } else {
            false
        }
    }

    /// Records unconditionally (for pre-sampled data).
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// The sampled values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Reduces the series to at most `buckets` points by max-pooling
    /// (max preserves the peaks that load-balancing plots care about).
    pub fn downsample_max(&self, buckets: usize) -> Vec<f64> {
        assert!(buckets >= 1);
        if self.values.len() <= buckets {
            return self.values.clone();
        }
        let per = self.values.len().div_ceil(buckets);
        self.values
            .chunks(per)
            .map(|c| c.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            .collect()
    }

    /// Renders a Unicode sparkline of at most `width` characters,
    /// scaled to `[0, cap]` (values above `cap` saturate).
    pub fn sparkline(&self, width: usize, cap: f64) -> String {
        sparkline(&self.downsample_max(width.max(1)), cap)
    }
}

/// Renders values as a Unicode bar sparkline scaled to `[0, cap]`.
pub fn sparkline(values: &[f64], cap: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let cap = if cap > 0.0 { cap } else { 1.0 };
    values
        .iter()
        .map(|&v| {
            let frac = (v / cap).clamp(0.0, 1.0);
            BARS[((frac * (BARS.len() - 1) as f64).round()) as usize]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_respects_interval() {
        let mut s = TimeSeries::new(10);
        assert!(s.offer(0, 1.0));
        assert!(!s.offer(5, 2.0));
        assert!(s.offer(10, 3.0));
        assert_eq!(s.values(), &[1.0, 3.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn stats() {
        let mut s = TimeSeries::new(1);
        for v in [1.0, 5.0, 3.0] {
            s.push(v);
        }
        assert_eq!(s.max(), Some(5.0));
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new(1);
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sparkline(10, 5.0), "");
    }

    #[test]
    fn downsample_max_pools_peaks() {
        let mut s = TimeSeries::new(1);
        for v in [0.0, 1.0, 9.0, 1.0, 0.0, 2.0, 0.0, 3.0] {
            s.push(v);
        }
        let d = s.downsample_max(4);
        assert_eq!(d, vec![1.0, 9.0, 2.0, 3.0]);
        // Fewer samples than buckets: unchanged.
        assert_eq!(s.downsample_max(100).len(), 8);
    }

    #[test]
    fn sparkline_scales_and_saturates() {
        let line = sparkline(&[0.0, 5.0, 10.0, 20.0], 10.0);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars.len(), 4);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert_eq!(chars[3], '█'); // saturated above cap
        assert!(chars[1] > chars[0] && chars[1] < chars[2]);
    }

    #[test]
    fn sparkline_zero_cap_does_not_divide_by_zero() {
        assert_eq!(sparkline(&[1.0], 0.0), "█");
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        TimeSeries::new(0);
    }
}
