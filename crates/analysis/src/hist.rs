//! Integer histograms (load distributions, sojourn times, tree depths).

/// A dense histogram over small non-negative integers with an overflow
/// bucket.
///
/// ```
/// use pcrlb_analysis::Histogram;
///
/// let h = Histogram::from_values([0, 1, 1, 2, 9]);
/// assert_eq!(h.quantile(0.5), 1);
/// assert!((h.tail_probability(2) - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram resolving values `0..cap` exactly; larger
    /// values share the overflow bucket (but `max`/`mean` stay exact).
    pub fn new(cap: usize) -> Self {
        Histogram {
            buckets: vec![0; cap.max(1)],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Builds a histogram from observations, sized to the largest.
    pub fn from_values(values: impl IntoIterator<Item = u64>) -> Self {
        let vals: Vec<u64> = values.into_iter().collect();
        let cap = vals.iter().copied().max().unwrap_or(0) as usize + 1;
        let mut h = Histogram::new(cap);
        for v in vals {
            h.record(v);
        }
        h
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        match self.buckets.get_mut(v as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Records `k` identical observations.
    pub fn record_n(&mut self, v: u64, k: u64) {
        if k == 0 {
            return;
        }
        self.count += k;
        self.sum += v * k;
        self.max = self.max.max(v);
        match self.buckets.get_mut(v as usize) {
            Some(b) => *b += k,
            None => self.overflow += k,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of all observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Observations exactly equal to `v` (`None` if `v` is in the
    /// overflow region and therefore not resolved).
    pub fn bucket(&self, v: u64) -> Option<u64> {
        self.buckets.get(v as usize).copied()
    }

    /// Observations strictly greater than `v` (exact as long as `v` is
    /// below the overflow region).
    pub fn above(&self, v: u64) -> u64 {
        let within: u64 = self
            .buckets
            .iter()
            .enumerate()
            .skip(v as usize + 1)
            .map(|(_, c)| *c)
            .sum();
        within + self.overflow
    }

    /// Empirical `P(X > v)`.
    pub fn tail_probability(&self, v: u64) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.above(v) as f64 / self.count as f64
        }
    }

    /// Empirical pmf over the resolved range (skipping the overflow).
    pub fn pmf(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.buckets.len()];
        }
        self.buckets
            .iter()
            .map(|&c| c as f64 / self.count as f64)
            .collect()
    }

    /// Smallest `v` with `P(X <= v) >= p` (nearest-rank quantile).
    pub fn quantile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p));
        if self.count == 0 {
            return 0;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (v, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return v as u64;
            }
        }
        self.max
    }

    /// Merges another histogram (must have the same resolution).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram resolutions differ"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let h = Histogram::from_values([0, 1, 1, 2, 5]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket(1), Some(2));
        assert_eq!(h.bucket(3), Some(0));
        assert_eq!(h.max(), 5);
        assert!((h.mean() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn overflow_counts_but_tracks_max() {
        let mut h = Histogram::new(4);
        h.record(2);
        h.record(100);
        assert_eq!(h.bucket(2), Some(1));
        assert_eq!(h.bucket(100), None);
        assert_eq!(h.max(), 100);
        assert_eq!(h.above(3), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn tail_probability_matches_manual() {
        let h = Histogram::from_values([0, 0, 1, 2, 3, 3]);
        assert!((h.tail_probability(0) - 4.0 / 6.0).abs() < 1e-12);
        assert!((h.tail_probability(2) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.tail_probability(3), 0.0);
    }

    #[test]
    fn quantiles() {
        let h = Histogram::from_values([1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.09), 1);
    }

    #[test]
    fn pmf_sums_to_resolved_fraction() {
        let h = Histogram::from_values([0, 1, 2]);
        let total: f64 = h.pmf().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(8);
        a.record(1);
        a.record(9); // overflow
        let mut b = Histogram::new(8);
        b.record_n(1, 3);
        a.merge(&b);
        assert_eq!(a.bucket(1), Some(4));
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 9);
    }

    #[test]
    #[should_panic(expected = "resolutions differ")]
    fn merge_requires_same_resolution() {
        let mut a = Histogram::new(4);
        a.merge(&Histogram::new(8));
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::new(4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.tail_probability(0), 0.0);
    }
}
