//! Chernoff–Hoeffding tail bounds.
//!
//! The paper invokes "Chernov-Hoeffding bounds" three times (Lemma 2,
//! Lemma 4, and the Main Theorem) to lift expectations to w.h.p.
//! statements. This module computes the actual bounds so experiments
//! can print *predicted* failure probabilities next to *measured*
//! violation rates — e.g. the probability that the unbalanced system
//! load exceeds `(1+δ)·E[load]`.

/// Upper tail for a sum of independent `[0,1]`-bounded variables with
/// mean `mu`: `P(X ≥ (1+delta)·mu) ≤ exp(−mu·delta²/(2+delta))`
/// (the standard simplified multiplicative Chernoff bound, valid for
/// all `delta > 0`).
pub fn upper_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0, "mean must be non-negative");
    assert!(delta > 0.0, "delta must be positive");
    (-mu * delta * delta / (2.0 + delta)).exp().min(1.0)
}

/// Lower tail: `P(X ≤ (1−delta)·mu) ≤ exp(−mu·delta²/2)` for
/// `0 < delta < 1`.
pub fn lower_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0, "mean must be non-negative");
    assert!(delta > 0.0 && delta < 1.0, "need 0 < delta < 1");
    (-mu * delta * delta / 2.0).exp().min(1.0)
}

/// Hoeffding bound for a sum of `count` independent variables each in
/// `[lo, hi]`: `P(X − E[X] ≥ t) ≤ exp(−2t²/(count·(hi−lo)²))`.
pub fn hoeffding(count: u64, lo: f64, hi: f64, t: f64) -> f64 {
    assert!(hi > lo, "need a non-degenerate range");
    assert!(t >= 0.0, "deviation must be non-negative");
    let width = hi - lo;
    (-2.0 * t * t / (count as f64 * width * width))
        .exp()
        .min(1.0)
}

/// The smallest `c` such that the bound `P(X ≥ (1+delta)·mu) ≤ n^{-c}`
/// holds by [`upper_tail`] — i.e. the "w.h.p. exponent" the paper's
/// statements carry. Returns 0 when the bound is vacuous.
pub fn whp_exponent(n: usize, mu: f64, delta: f64) -> f64 {
    let p = upper_tail(mu, delta);
    if p >= 1.0 || n < 2 {
        return 0.0;
    }
    -p.ln() / (n as f64).ln()
}

/// Predicted bound on the total system load of the unbalanced `Single`
/// system: with per-processor expectation `e_load` and `n` processors,
/// returns `(bound, probability)` such that
/// `P(total ≥ bound) ≤ probability`, using `delta = 0.5`.
///
/// The per-processor load is not `[0,1]`-bounded, but it is dominated
/// by a geometric; we use the standard trick of bounding the load by
/// its value capped at `cap` (chosen so the cap's tail is negligible)
/// and applying Hoeffding on `[0, cap]`.
pub fn system_load_bound(n: usize, e_load: f64, cap: f64) -> (f64, f64) {
    let mu = e_load * n as f64;
    let t = 0.5 * mu;
    let p = hoeffding(n as u64, 0.0, cap, t);
    (1.5 * mu, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_tail_decreases_in_mu_and_delta() {
        assert!(upper_tail(100.0, 0.5) < upper_tail(10.0, 0.5));
        assert!(upper_tail(100.0, 1.0) < upper_tail(100.0, 0.5));
        assert!(upper_tail(0.0, 0.5) >= 1.0 - 1e-12); // vacuous at mu=0
    }

    #[test]
    fn tails_are_probabilities() {
        for mu in [0.1, 1.0, 50.0] {
            for delta in [0.1, 0.5, 2.0] {
                let p = upper_tail(mu, delta);
                assert!((0.0..=1.0).contains(&p));
            }
            let p = lower_tail(mu, 0.5);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn hoeffding_known_value() {
        // n=100 coin flips in [0,1], deviation t=20:
        // exp(-2*400/100) = exp(-8).
        let p = hoeffding(100, 0.0, 1.0, 20.0);
        assert!((p - (-8.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_scales_with_range() {
        // Wider ranges weaken the bound.
        assert!(hoeffding(100, 0.0, 2.0, 20.0) > hoeffding(100, 0.0, 1.0, 20.0));
    }

    #[test]
    fn whp_exponent_grows_with_n_scaled_mean() {
        // If mu = Theta(n), the exponent grows ~ n/ln n: w.h.p. gets
        // stronger with n, which is exactly the paper's usage.
        let e1 = whp_exponent(1 << 10, 1024.0, 0.5);
        let e2 = whp_exponent(1 << 14, 16384.0, 0.5);
        assert!(e2 > e1);
        assert!(e1 > 1.0, "exponent {e1} should already exceed 1");
    }

    #[test]
    fn system_load_bound_is_meaningful() {
        // Lemma 2 scale: n = 4096, E[load] = 2 per processor. The cap
        // trades truncation error against bound strength: at cap 16 the
        // per-processor tail P(load >= 16) = (2/3)^16 < 0.2% while the
        // Hoeffding exponent is 2t^2/(n*16^2) = 32.
        let (bound, p) = system_load_bound(4096, 2.0, 16.0);
        assert!((bound - 1.5 * 2.0 * 4096.0).abs() < 1e-9);
        assert!(p < 1e-9, "predicted failure probability {p} too weak");
        // A cap far above the mean weakens the bound into uselessness —
        // the caller must choose it from the geometric tail.
        let (_, weak) = system_load_bound(4096, 2.0, 64.0);
        assert!(weak > p);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn upper_tail_rejects_zero_delta() {
        upper_tail(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "0 < delta < 1")]
    fn lower_tail_rejects_large_delta() {
        lower_tail(1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn hoeffding_rejects_empty_range() {
        hoeffding(10, 1.0, 1.0, 0.5);
    }
}
