//! Wire-level message types.
//!
//! Everything the protocol layer says over the network is one of the
//! [`WireMsg`] variants below. The types here are deliberately dumb
//! data — the simulator's `Task` and the collision crate's in-memory
//! message bookkeeping convert to and from these structs at the
//! runtime boundary, so this crate stays a dependency leaf.

use pcrlb_faults::MsgCtx;

/// A task as it travels inside a [`WireMsg::Transfer`] frame. Mirrors
/// the simulator's `Task` field-for-field with fixed-width integers so
/// the encoding is platform independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireTask {
    /// Globally unique task id.
    pub id: u64,
    /// Processor that generated the task.
    pub origin: u64,
    /// Step at which the task was generated.
    pub born: u64,
    /// Work units (1 for the paper's unit tasks).
    pub weight: u32,
}

/// The kind of a control-plane message. This is the wire-facing twin
/// of the simulator ledger's `MessageKind`: the five message kinds the
/// paper's protocol exchanges besides task transfers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControlKind {
    /// Collision-game query (requester → target).
    Query,
    /// Collision-game acceptance (target → requester).
    Accept,
    /// Id-message carrying a match up a balancing-request tree.
    IdMessage,
    /// Load probe (preround heavy → candidate partner).
    Probe,
    /// Load reply / sibling check answer.
    LoadReply,
}

impl ControlKind {
    /// Stable one-byte wire tag.
    #[inline]
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            ControlKind::Query => 1,
            ControlKind::Accept => 2,
            ControlKind::IdMessage => 3,
            ControlKind::Probe => 4,
            ControlKind::LoadReply => 5,
        }
    }

    /// Inverse of [`ControlKind::tag`].
    #[inline]
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            1 => ControlKind::Query,
            2 => ControlKind::Accept,
            3 => ControlKind::IdMessage,
            4 => ControlKind::Probe,
            5 => ControlKind::LoadReply,
            _ => return None,
        })
    }

    /// All kinds, for exhaustive tests.
    pub const ALL: [ControlKind; 5] = [
        ControlKind::Query,
        ControlKind::Accept,
        ControlKind::IdMessage,
        ControlKind::Probe,
        ControlKind::LoadReply,
    ];
}

/// One control-plane message as recorded by the protocol layer: the
/// physical endpoints plus (when the message is subject to fault
/// injection) the exact coordinates the logical layer hashed to decide
/// its fate. The runtime turns each record into a real frame; the
/// transport consults `FaultModel::frame_dropped` on the same
/// coordinates, so the physical drop coincides with the logical one.
#[derive(Clone, Copy, Debug)]
pub struct ControlRecord {
    /// Message kind.
    pub kind: ControlKind,
    /// Sending processor.
    pub src: u64,
    /// Receiving processor.
    pub dst: u64,
    /// Fault coordinates, or `None` when the logical protocol has no
    /// drop path for this message (e.g. preround probes).
    pub fault: Option<MsgCtx>,
    /// What the logical layer decided: `true` means the message was
    /// dropped in the game/forest simulation. The transport must come
    /// to the same conclusion via `frame_dropped` (both are the same
    /// pure hash), and the runtime cross-checks in debug builds.
    pub dropped: bool,
}

/// An append-only log of control records for one simulation step,
/// filled by the collision game / balance forest / balancer when a net
/// runtime is listening.
#[derive(Clone, Debug, Default)]
pub struct WireLog {
    /// The records, in emission order.
    pub control: Vec<ControlRecord>,
}

impl WireLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        WireLog::default()
    }

    /// Appends one record.
    #[inline]
    pub fn push(&mut self, rec: ControlRecord) {
        self.control.push(rec);
    }

    /// Appends a record that is not subject to fault injection.
    #[inline]
    pub fn push_reliable(&mut self, kind: ControlKind, src: usize, dst: usize) {
        self.control.push(ControlRecord {
            kind,
            src: src as u64,
            dst: dst as u64,
            fault: None,
            dropped: false,
        });
    }

    /// Appends a faultable record with its logical drop verdict.
    #[inline]
    pub fn push_faultable(
        &mut self,
        kind: ControlKind,
        src: usize,
        dst: usize,
        ctx: MsgCtx,
        dropped: bool,
    ) {
        self.control.push(ControlRecord {
            kind,
            src: src as u64,
            dst: dst as u64,
            fault: Some(ctx),
            dropped,
        });
    }

    /// Moves all records out of `other` into `self`, preserving order.
    pub fn append(&mut self, other: &mut WireLog) {
        self.control.append(&mut other.control);
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.control.len()
    }

    /// True when no records have been logged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.control.is_empty()
    }
}

/// A decoded protocol frame. See the crate docs for the envelope
/// layout; [`crate::codec`] for the byte-level format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// Connection handshake: the first frame on every fresh TCP
    /// connection, identifying the dialing node. Loopback never sends
    /// it.
    Hello {
        /// Node id of the connecting peer.
        node: u32,
    },
    /// One control-plane protocol message (query/accept/id/probe/
    /// load-reply). `nonce`/`round` carry the fault coordinates' game
    /// identity for observability; they are zero for messages outside
    /// any game.
    Control {
        /// Message kind.
        kind: ControlKind,
        /// Sending processor.
        src: u64,
        /// Receiving processor.
        dst: u64,
        /// Game nonce (0 outside games).
        nonce: u64,
        /// Game round / tree level (0 outside games).
        round: u32,
    },
    /// A block transfer of tasks between two processors. `seq` is the
    /// global emission sequence number assigned by the control step;
    /// in strict (deterministic) mode receivers apply transfers in
    /// `seq` order so the result is independent of network arrival
    /// order, while `--net-relaxed` runs apply them as they arrive.
    Transfer {
        /// Global emission sequence number within the step.
        seq: u32,
        /// Sending processor.
        src: u64,
        /// Receiving processor.
        dst: u64,
        /// The tasks, in queue order.
        tasks: Vec<WireTask>,
    },
}
