//! TCP transport: length-prefixed frames over `std::net`, no external
//! dependencies.
//!
//! # Stream format
//!
//! Each frame on the wire is a `u32` little-endian length prefix
//! followed by that many bytes of codec envelope (see [`crate::codec`]).
//! The first frame on every fresh connection must be a
//! [`WireMsg::Hello`] identifying the dialing node; after the
//! handshake the connection carries protocol frames only.
//!
//! # Topology and lifecycle
//!
//! Every endpoint binds one listener on `127.0.0.1:0` at group
//! creation, so the group knows all peer addresses up front and no
//! port coordination is needed. Outgoing connections are established
//! lazily on first send to a peer and **reused** for the rest of the
//! run (one cached write stream per peer). Each endpoint runs one
//! acceptor thread plus one reader thread per inbound connection;
//! readers forward complete frames into the endpoint's mailbox
//! channel, which `recv` drains with the configured timeout. Reads and
//! writes both carry socket timeouts, so a wedged peer surfaces as
//! [`NetError::Timeout`]/[`NetError::Io`] instead of a hang.

use crate::codec;
use crate::transport::{NetError, Transport, DEFAULT_TIMEOUT};
use crate::wire::WireMsg;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on a single frame, guarding readers against corrupt
/// length prefixes.
const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Socket-level read poll granularity inside reader threads; bounded
/// so shutdown is responsive while idle connections stay alive.
const READ_POLL: Duration = Duration::from_millis(500);

/// One node's TCP endpoint. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct TcpNet {
    node: usize,
    addrs: Vec<SocketAddr>,
    rx: Receiver<Vec<u8>>,
    peers: Vec<Option<TcpStream>>,
    timeout: Duration,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpNet {
    /// Binds a group of `nodes` endpoints on 127.0.0.1 ephemeral ports
    /// with the default timeout.
    pub fn group(nodes: usize) -> std::io::Result<Vec<TcpNet>> {
        TcpNet::group_with_timeout(nodes, DEFAULT_TIMEOUT)
    }

    /// Binds a group with an explicit receive/write timeout.
    pub fn group_with_timeout(nodes: usize, timeout: Duration) -> std::io::Result<Vec<TcpNet>> {
        assert!(nodes > 0, "a transport group needs at least one node");
        let mut listeners = Vec::with_capacity(nodes);
        let mut addrs = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let mut group = Vec::with_capacity(nodes);
        for (node, listener) in listeners.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            let shutdown = Arc::new(AtomicBool::new(false));
            let acceptor = spawn_acceptor(listener, tx, Arc::clone(&shutdown));
            group.push(TcpNet {
                node,
                addrs: addrs.clone(),
                rx,
                peers: (0..nodes).map(|_| None).collect(),
                timeout,
                shutdown,
                acceptor: Some(acceptor),
            });
        }
        Ok(group)
    }

    /// Establishes (or returns the cached) write stream to `to`.
    fn stream_to(&mut self, to: usize) -> Result<&mut TcpStream, NetError> {
        if self.peers[to].is_none() {
            let stream = TcpStream::connect_timeout(&self.addrs[to], self.timeout)
                .map_err(|e| NetError::Io(e.to_string()))?;
            stream
                .set_write_timeout(Some(self.timeout))
                .map_err(|e| NetError::Io(e.to_string()))?;
            let _ = stream.set_nodelay(true);
            let mut stream = stream;
            let hello = codec::encode(&WireMsg::Hello {
                node: self.node as u32,
            });
            write_frame(&mut stream, &hello).map_err(|e| NetError::Io(e.to_string()))?;
            self.peers[to] = Some(stream);
        }
        Ok(self.peers[to].as_mut().expect("stream cached above"))
    }
}

impl Transport for TcpNet {
    fn node(&self) -> usize {
        self.node
    }

    fn nodes(&self) -> usize {
        self.addrs.len()
    }

    fn send(&mut self, to: usize, frame: &[u8]) -> Result<(), NetError> {
        if to >= self.addrs.len() {
            return Err(NetError::Closed);
        }
        let stream = self.stream_to(to)?;
        if let Err(e) = write_frame(stream, frame) {
            // A dead cached connection is not reusable; forget it so a
            // retry dials fresh.
            self.peers[to] = None;
            return Err(NetError::Io(e.to_string()));
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        match self.rx.recv_timeout(self.timeout) {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }
}

impl Drop for TcpNet {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Close cached write streams so peers' reader threads see EOF.
        for p in &mut self.peers {
            *p = None;
        }
        // Wake the acceptor out of accept() so it can observe shutdown.
        let _ = TcpStream::connect_timeout(&self.addrs[self.node], Duration::from_millis(200));
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes, tolerating socket read-timeout
/// polls; bails out if `shutdown` flips mid-read only when no partial
/// data would be torn (i.e. between frames, handled by the caller).
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false), // EOF
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Mid-frame timeouts are only fatal once shutdown is
                // requested and nothing of this frame has arrived yet.
                if shutdown.load(Ordering::SeqCst) && filled == 0 {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Accepts inbound connections and spawns one reader per connection.
fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<Vec<u8>>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut readers = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let tx = tx.clone();
            let shutdown = Arc::clone(&shutdown);
            readers.push(std::thread::spawn(move || {
                read_connection(stream, &tx, &shutdown);
            }));
        }
        for r in readers {
            let _ = r.join();
        }
    })
}

/// Reads frames off one inbound connection and forwards them to the
/// endpoint mailbox. The first frame must be a valid `Hello`.
fn read_connection(mut stream: TcpStream, tx: &Sender<Vec<u8>>, shutdown: &AtomicBool) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut first = true;
    loop {
        let mut len_buf = [0u8; 4];
        match read_exact_polling(&mut stream, &mut len_buf, shutdown) {
            Ok(true) => {}
            _ => return,
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME_BYTES {
            return; // corrupt stream; drop the connection
        }
        let mut frame = vec![0u8; len as usize];
        match read_exact_polling(&mut stream, &mut frame, shutdown) {
            Ok(true) => {}
            _ => return,
        }
        if first {
            first = false;
            // Handshake: refuse streams that do not introduce
            // themselves with a well-formed Hello.
            match codec::decode(&frame) {
                Ok(WireMsg::Hello { .. }) => continue,
                _ => return,
            }
        }
        if tx.send(frame).is_err() {
            return; // endpoint gone
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_round_trip_and_connection_reuse() {
        let mut group = TcpNet::group_with_timeout(2, Duration::from_secs(5)).unwrap();
        let mut b = group.pop().unwrap();
        let mut a = group.pop().unwrap();
        let f1 = codec::encode(&WireMsg::Barrier {
            node: 0,
            step: 1,
            load: 7,
        });
        let f2 = codec::encode(&WireMsg::Barrier {
            node: 0,
            step: 2,
            load: 8,
        });
        a.send(1, &f1).unwrap();
        a.send(1, &f2).unwrap();
        assert_eq!(b.recv().unwrap(), f1);
        assert_eq!(b.recv().unwrap(), f2);
        // Reuse: still exactly one cached stream to peer 1.
        assert!(a.peers[1].is_some());
        // And the reverse direction works too.
        b.send(0, &f1).unwrap();
        assert_eq!(a.recv().unwrap(), f1);
    }

    #[test]
    fn tcp_self_send_delivers() {
        let mut group = TcpNet::group_with_timeout(1, Duration::from_secs(5)).unwrap();
        let mut a = group.pop().unwrap();
        let f = codec::encode(&WireMsg::Hello { node: 9 });
        a.send(0, &f).unwrap();
        assert_eq!(a.recv().unwrap(), f);
    }

    #[test]
    fn tcp_recv_times_out() {
        let mut group = TcpNet::group_with_timeout(1, Duration::from_millis(50)).unwrap();
        let err = group[0].recv().unwrap_err();
        assert!(matches!(err, NetError::Timeout));
    }

    #[test]
    fn tcp_rejects_streams_without_hello() {
        let mut group = TcpNet::group_with_timeout(1, Duration::from_millis(300)).unwrap();
        let ep = group.pop().unwrap();
        // Dial raw and send a non-Hello first frame: it must not be
        // delivered.
        let mut raw = TcpStream::connect(ep.addrs[0]).unwrap();
        let bogus = codec::encode(&WireMsg::Barrier {
            node: 0,
            step: 0,
            load: 0,
        });
        write_frame(&mut raw, &bogus).unwrap();
        let mut ep = ep;
        assert!(matches!(ep.recv().unwrap_err(), NetError::Timeout));
    }
}
