//! TCP transport: length-prefixed frames over non-blocking `std::net`
//! sockets, no external dependencies and no helper threads.
//!
//! # Stream format
//!
//! Each frame on the wire is a `u32` little-endian length prefix
//! followed by that many bytes of codec envelope (see [`crate::codec`]).
//! The first frame on every fresh connection must be a
//! [`WireMsg::Hello`] identifying the dialing node; after the
//! handshake the connection carries protocol frames only.
//!
//! # Topology and lifecycle
//!
//! Every endpoint binds one listener on `127.0.0.1:0` at group
//! creation, so the group knows all peer addresses up front and no
//! port coordination is needed. Outgoing connections are established
//! lazily on first send to a peer and **reused** for the rest of the
//! run (one cached write stream per peer). There are no acceptor or
//! reader threads: the listener and every accepted stream are
//! non-blocking, and a single poll loop inside `recv`/`try_recv`/
//! `send` accepts connections, drains readable sockets into per-
//! connection buffers, and slices complete frames into the endpoint's
//! inbox. Failures are typed instead of hung: a silent peer surfaces
//! as [`NetError::Timeout`], a mid-run disconnect as
//! [`NetError::Closed`], a bad first frame as
//! [`NetError::Handshake`], and a write that makes no progress for
//! the whole timeout as [`NetError::Timeout`].

use crate::codec;
use crate::transport::{NetError, Transport, DEFAULT_TIMEOUT};
use crate::wire::WireMsg;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Hard cap on a single frame, guarding readers against corrupt
/// length prefixes.
const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Sleep between poll iterations while waiting for readiness. Short
/// enough to keep latency low, long enough not to spin a core.
const POLL_SLEEP: Duration = Duration::from_micros(200);

/// Size of the per-endpoint socket read scratch buffer.
const READ_CHUNK: usize = 64 << 10;

/// One accepted inbound connection and its framing state.
#[derive(Debug)]
struct InConn {
    stream: TcpStream,
    /// Peer node id, once a valid `Hello` arrived.
    peer: Option<u32>,
    /// Bytes read but not yet sliced into frames.
    buf: Vec<u8>,
    /// Saw EOF (or a fatal read error); the connection is drained but
    /// will produce nothing more.
    eof: bool,
}

/// One node's TCP endpoint. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct TcpNet {
    node: usize,
    addrs: Vec<SocketAddr>,
    listener: TcpListener,
    /// Cached outbound write streams, dialed lazily.
    peers: Vec<Option<TcpStream>>,
    /// Accepted inbound connections.
    conns: Vec<InConn>,
    /// Complete frames awaiting `recv`.
    inbox: VecDeque<Vec<u8>>,
    /// Scratch buffer for socket reads, reused across calls.
    scratch: Vec<u8>,
    /// Sticky error: an identified peer's connection hit EOF mid-run.
    peer_closed: bool,
    /// Sticky error: a connection failed the hello handshake.
    handshake_err: Option<String>,
    timeout: Duration,
}

impl TcpNet {
    /// Binds a group of `nodes` endpoints on 127.0.0.1 ephemeral ports
    /// with the default timeout.
    pub fn group(nodes: usize) -> std::io::Result<Vec<TcpNet>> {
        TcpNet::group_with_timeout(nodes, DEFAULT_TIMEOUT)
    }

    /// Binds a group with an explicit receive/write timeout.
    pub fn group_with_timeout(nodes: usize, timeout: Duration) -> std::io::Result<Vec<TcpNet>> {
        assert!(nodes > 0, "a transport group needs at least one node");
        let mut listeners = Vec::with_capacity(nodes);
        let mut addrs = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let l = TcpListener::bind("127.0.0.1:0")?;
            l.set_nonblocking(true)?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        Ok(listeners
            .into_iter()
            .enumerate()
            .map(|(node, listener)| TcpNet {
                node,
                addrs: addrs.clone(),
                listener,
                peers: (0..nodes).map(|_| None).collect(),
                conns: Vec::new(),
                inbox: VecDeque::new(),
                scratch: vec![0; READ_CHUNK],
                peer_closed: false,
                handshake_err: None,
                timeout,
            })
            .collect())
    }

    /// Ensures a cached write stream to `to` exists, dialing and
    /// sending the hello handshake on first use.
    fn ensure_stream(&mut self, to: usize) -> Result<(), NetError> {
        if self.peers[to].is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(&self.addrs[to], self.timeout)
            .map_err(|e| NetError::Io(e.to_string()))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        self.peers[to] = Some(stream);
        let hello = codec::encode(&WireMsg::Hello {
            node: self.node as u32,
        });
        let mut prefixed = Vec::with_capacity(4 + hello.len());
        prefixed.extend_from_slice(&(hello.len() as u32).to_le_bytes());
        prefixed.extend_from_slice(&hello);
        if let Err(e) = self.write_with_deadline(to, &prefixed) {
            self.peers[to] = None;
            return Err(e);
        }
        Ok(())
    }

    /// Writes `buf` to the cached stream for `to`, polling the rest of
    /// the endpoint while the socket is back-pressured. Fails with
    /// [`NetError::Timeout`] if no byte makes progress for the whole
    /// timeout — a wedged peer stalls the write, it does not hang it.
    fn write_with_deadline(&mut self, to: usize, buf: &[u8]) -> Result<(), NetError> {
        let mut off = 0;
        let mut last_progress = Instant::now();
        while off < buf.len() {
            let stream = self.peers[to].as_mut().expect("stream cached by caller");
            match stream.write(&buf[off..]) {
                Ok(0) => {
                    self.peers[to] = None;
                    return Err(NetError::Closed);
                }
                Ok(n) => {
                    off += n;
                    last_progress = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if last_progress.elapsed() >= self.timeout {
                        self.peers[to] = None;
                        return Err(NetError::Timeout);
                    }
                    // Keep draining inbound while stalled so two
                    // mutually back-pressured endpoints cannot
                    // deadlock on full socket buffers.
                    self.pump();
                    std::thread::sleep(POLL_SLEEP);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.peers[to] = None;
                    return Err(NetError::Io(e.to_string()));
                }
            }
        }
        Ok(())
    }

    /// One readiness sweep: accept pending connections, read every
    /// readable socket, slice complete frames into the inbox. Never
    /// blocks.
    fn pump(&mut self) {
        // Accept everything currently pending.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.conns.push(InConn {
                        stream,
                        peer: None,
                        buf: Vec::new(),
                        eof: false,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        // Drain every readable connection.
        for i in 0..self.conns.len() {
            loop {
                let conn = &mut self.conns[i];
                if conn.eof {
                    break;
                }
                match conn.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        conn.eof = true;
                        // EOF on an identified peer mid-run is a real
                        // disconnect; a never-identified stream going
                        // away is just a failed dial.
                        if conn.peer.is_some() {
                            self.peer_closed = true;
                        }
                    }
                    Ok(n) => {
                        let chunk = &self.scratch[..n];
                        conn.buf.extend_from_slice(chunk);
                        self.slice_frames(i);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.conns[i].eof = true;
                        if self.conns[i].peer.is_some() {
                            self.peer_closed = true;
                        }
                    }
                }
            }
        }
        // Frames are sliced after every read, so a dead connection's
        // leftover bytes can only be a torn partial frame — drop it.
        self.conns.retain(|c| !c.eof);
    }

    /// Slices complete length-prefixed frames out of connection `i`'s
    /// buffer into the inbox, enforcing the hello handshake on the
    /// first frame.
    fn slice_frames(&mut self, i: usize) {
        let nodes = self.addrs.len() as u32;
        let conn = &mut self.conns[i];
        let mut start = 0;
        while conn.buf.len() - start >= 4 {
            let len = u32::from_le_bytes(conn.buf[start..start + 4].try_into().expect("4 bytes"));
            if len > MAX_FRAME_BYTES {
                conn.eof = true;
                if conn.peer.is_none() {
                    self.handshake_err = Some(format!("frame length {len} exceeds cap"));
                } else {
                    self.peer_closed = true;
                }
                break;
            }
            let end = start + 4 + len as usize;
            if conn.buf.len() < end {
                break;
            }
            let frame = &conn.buf[start + 4..end];
            if conn.peer.is_none() {
                // Handshake: the first frame must be a well-formed
                // Hello from an in-range node.
                match codec::decode(frame) {
                    Ok(WireMsg::Hello { node }) if node < nodes => conn.peer = Some(node),
                    Ok(WireMsg::Hello { node }) => {
                        self.handshake_err =
                            Some(format!("hello from out-of-range node {node} (of {nodes})"));
                        conn.eof = true;
                        break;
                    }
                    _ => {
                        self.handshake_err = Some("first frame was not a hello".to_string());
                        conn.eof = true;
                        break;
                    }
                }
            } else {
                self.inbox.push_back(frame.to_vec());
            }
            start = end;
        }
        conn.buf.drain(..start);
    }

    /// Surfaces a sticky failure once the inbox has been drained:
    /// queued frames are always delivered first.
    fn sticky_error(&mut self) -> Option<NetError> {
        if !self.inbox.is_empty() {
            return None;
        }
        if let Some(msg) = self.handshake_err.take() {
            return Some(NetError::Handshake(msg));
        }
        if self.peer_closed {
            return Some(NetError::Closed);
        }
        None
    }
}

impl Transport for TcpNet {
    fn node(&self) -> usize {
        self.node
    }

    fn nodes(&self) -> usize {
        self.addrs.len()
    }

    fn send(&mut self, to: usize, frame: &[u8]) -> Result<(), NetError> {
        if to >= self.addrs.len() {
            return Err(NetError::Closed);
        }
        self.ensure_stream(to)?;
        let mut prefixed = Vec::with_capacity(4 + frame.len());
        prefixed.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        prefixed.extend_from_slice(frame);
        self.write_with_deadline(to, &prefixed)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            self.pump();
            if let Some(frame) = self.inbox.pop_front() {
                return Ok(frame);
            }
            if let Some(err) = self.sticky_error() {
                return Err(err);
            }
            if Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
            std::thread::sleep(POLL_SLEEP);
        }
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        self.pump();
        if let Some(frame) = self.inbox.pop_front() {
            return Ok(Some(frame));
        }
        if let Some(err) = self.sticky_error() {
            return Err(err);
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn control(nonce: u64) -> Vec<u8> {
        codec::encode(&WireMsg::Control {
            kind: crate::wire::ControlKind::Probe,
            src: 0,
            dst: 1,
            nonce,
            round: 0,
        })
    }

    #[test]
    fn tcp_round_trip_and_connection_reuse() {
        let mut group = TcpNet::group_with_timeout(2, Duration::from_secs(5)).unwrap();
        let mut b = group.pop().unwrap();
        let mut a = group.pop().unwrap();
        let f1 = control(1);
        let f2 = control(2);
        a.send(1, &f1).unwrap();
        a.send(1, &f2).unwrap();
        assert_eq!(b.recv().unwrap(), f1);
        assert_eq!(b.recv().unwrap(), f2);
        // Reuse: still exactly one cached stream to peer 1.
        assert!(a.peers[1].is_some());
        // And the reverse direction works too.
        b.send(0, &f1).unwrap();
        assert_eq!(a.recv().unwrap(), f1);
    }

    #[test]
    fn tcp_self_send_delivers() {
        let mut group = TcpNet::group_with_timeout(1, Duration::from_secs(5)).unwrap();
        let mut a = group.pop().unwrap();
        let f = control(9);
        a.send(0, &f).unwrap();
        assert_eq!(a.recv().unwrap(), f);
    }

    #[test]
    fn tcp_recv_times_out() {
        let mut group = TcpNet::group_with_timeout(1, Duration::from_millis(50)).unwrap();
        let err = group[0].recv().unwrap_err();
        assert!(matches!(err, NetError::Timeout));
    }

    #[test]
    fn tcp_rejects_streams_without_hello() {
        let mut group = TcpNet::group_with_timeout(1, Duration::from_millis(300)).unwrap();
        let mut ep = group.pop().unwrap();
        // Dial raw and send a non-Hello first frame: the endpoint must
        // surface a typed handshake error, not deliver the frame.
        let mut raw = TcpStream::connect(ep.addrs[0]).unwrap();
        let bogus = control(0);
        raw.write_all(&(bogus.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&bogus).unwrap();
        raw.flush().unwrap();
        let err = ep.recv().unwrap_err();
        assert!(matches!(err, NetError::Handshake(_)), "got {err:?}");
    }

    #[test]
    fn tcp_rejects_hello_from_unknown_node() {
        let mut group = TcpNet::group_with_timeout(1, Duration::from_millis(300)).unwrap();
        let mut ep = group.pop().unwrap();
        // A Hello claiming a node id outside the group is a handshake
        // violation, not a valid peer.
        let mut raw = TcpStream::connect(ep.addrs[0]).unwrap();
        let hello = codec::encode(&WireMsg::Hello { node: 99 });
        raw.write_all(&(hello.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&hello).unwrap();
        raw.flush().unwrap();
        let err = ep.recv().unwrap_err();
        assert!(matches!(err, NetError::Handshake(_)), "got {err:?}");
    }

    #[test]
    fn tcp_mid_run_disconnect_surfaces_closed() {
        let mut group = TcpNet::group_with_timeout(2, Duration::from_secs(5)).unwrap();
        let mut b = group.pop().unwrap();
        let a = {
            let mut a = group.pop().unwrap();
            let f = control(7);
            a.send(1, &f).unwrap();
            assert_eq!(b.recv().unwrap(), f, "frame sent before the crash");
            a
        };
        // Peer 0 dies mid-run: its streams close. The survivor must get
        // a typed Closed error on the next receive, not hang until the
        // read deadline.
        drop(a);
        let err = b.recv().unwrap_err();
        assert!(matches!(err, NetError::Closed), "got {err:?}");
    }

    #[test]
    fn tcp_queued_frames_survive_peer_disconnect() {
        let mut group = TcpNet::group_with_timeout(2, Duration::from_secs(5)).unwrap();
        let mut b = group.pop().unwrap();
        let mut a = group.pop().unwrap();
        let f1 = control(1);
        let f2 = control(2);
        a.send(1, &f1).unwrap();
        a.send(1, &f2).unwrap();
        // Give the bytes time to land in b's kernel buffer, then kill
        // the sender before b ever polls: both frames must still be
        // delivered (in order) before the Closed error surfaces.
        std::thread::sleep(Duration::from_millis(100));
        drop(a);
        assert_eq!(b.recv().unwrap(), f1);
        assert_eq!(b.recv().unwrap(), f2);
        let err = b.recv().unwrap_err();
        assert!(matches!(err, NetError::Closed), "got {err:?}");
    }

    #[test]
    fn tcp_recv_burst_drains_queued_frames_before_closed() {
        // Regression for the drain-first contract on the burst path:
        // without churn a lost peer is a typed `Closed` error, but every
        // frame the peer managed to put on the wire must come out of
        // `recv_burst` first — the runtime's takeover repair (and the
        // no-churn fatal diagnosis) both rely on no frame being eaten
        // by the error.
        let mut group = TcpNet::group_with_timeout(2, Duration::from_secs(5)).unwrap();
        let mut b = group.pop().unwrap();
        let mut a = group.pop().unwrap();
        let f1 = control(1);
        let f2 = control(2);
        let f3 = control(3);
        a.send(1, &f1).unwrap();
        a.send(1, &f2).unwrap();
        a.send(1, &f3).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        drop(a);
        // `recv_burst` may drain the frames and surface Closed in the
        // same call (frames land in `out` before the sticky error is
        // consulted) or across several calls; either way every queued
        // frame must be in `out`, in order, by the time Closed shows.
        let mut burst = Vec::new();
        loop {
            match b.recv_burst(&mut burst) {
                Ok(()) => {}
                Err(NetError::Closed) => break,
                Err(other) => panic!("expected Closed, got {other:?}"),
            }
        }
        assert_eq!(burst, vec![f1, f2, f3], "frames lost or reordered");
    }

    #[test]
    fn tcp_write_stall_times_out() {
        let mut group = TcpNet::group_with_timeout(2, Duration::from_millis(200)).unwrap();
        let b = group.pop().unwrap();
        let mut a = group.pop().unwrap();
        // Peer 1 exists but never reads: once its kernel receive buffer
        // and our send buffer fill, writes stop making progress and the
        // sender must surface a typed Timeout instead of blocking
        // forever. Bounded: 64 × 1 MiB overwhelms any default socket
        // buffer long before the loop ends.
        let big = vec![0xA5u8; 1 << 20];
        let mut timed_out = false;
        for _ in 0..64 {
            match a.send(1, &big) {
                Ok(()) => {}
                Err(NetError::Timeout) => {
                    timed_out = true;
                    break;
                }
                Err(other) => panic!("expected Timeout, got {other:?}"),
            }
        }
        assert!(timed_out, "64 MiB vanished into socket buffers");
        drop(b);
    }
}
