//! The [`Transport`] trait and the deterministic in-process loopback
//! implementation.
//!
//! A transport is a *group* of node endpoints created together; each
//! endpoint is owned by one node thread and can send an opaque frame
//! to any node in the group (including itself) and receive the next
//! frame addressed to it. Delivery is reliable and per-sender FIFO;
//! cross-sender interleaving is unspecified — the runtime restores
//! determinism above the transport with sequence numbers and per-peer
//! round watermarks, so *both* implementations (loopback and TCP)
//! drive the simulation to bit-identical results.

use crate::codec::CodecError;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Default receive/write timeout: generous enough for CI under load,
/// small enough that a lost peer fails the run instead of hanging it.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Transport failure.
#[derive(Clone, Debug)]
pub enum NetError {
    /// No frame arrived within the endpoint's receive timeout, or a
    /// write made no progress for the whole write timeout.
    Timeout,
    /// The peer (or the whole group) shut down.
    Closed,
    /// Socket-level I/O error (TCP only).
    Io(String),
    /// A received frame failed to decode.
    Codec(CodecError),
    /// A peer failed the hello handshake (missing, malformed, or
    /// claiming an out-of-range / already-connected node id).
    Handshake(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Closed => write!(f, "transport closed"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Handshake(e) => write!(f, "handshake failed: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// One node's endpoint into a transport group.
///
/// Implementations must be `Send` so node threads can own their
/// endpoint for the duration of a scoped step.
pub trait Transport: Send {
    /// This endpoint's node id (0-based, dense).
    fn node(&self) -> usize;

    /// Number of nodes in the group.
    fn nodes(&self) -> usize;

    /// Sends one already-encoded frame to `to`. Self-sends are allowed
    /// and deliver like any other frame.
    fn send(&mut self, to: usize, frame: &[u8]) -> Result<(), NetError>;

    /// Receives the next frame addressed to this node, blocking up to
    /// the transport's timeout.
    fn recv(&mut self) -> Result<Vec<u8>, NetError>;

    /// Non-blocking receive: the next queued frame, or `None` when
    /// nothing is pending right now. Implementations must still make
    /// I/O progress (pump sockets, accept connections) before
    /// answering `None`.
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError>;

    /// Blocks for the next frame, then drains everything else already
    /// queued into `out` — one readiness round-trip for a whole burst.
    /// Appends at least one frame on success.
    fn recv_burst(&mut self, out: &mut Vec<Vec<u8>>) -> Result<(), NetError> {
        out.push(self.recv()?);
        while let Some(frame) = self.try_recv()? {
            out.push(frame);
        }
        Ok(())
    }
}

/// Shared state of one loopback mailbox.
#[derive(Debug, Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Vec<u8>>>,
    ready: Condvar,
}

/// The deterministic in-process transport: one unbounded FIFO mailbox
/// per node, guarded by a mutex + condvar. Sends never block; receives
/// block until a frame arrives (or the timeout fires). Per-sender
/// ordering is exact FIFO; there is no I/O, no ports, and no threads
/// of its own, so a loopback group is as cheap as a channel.
#[derive(Debug)]
pub struct LoopbackNet {
    node: usize,
    boxes: Arc<Vec<Mailbox>>,
    timeout: Duration,
}

impl LoopbackNet {
    /// Creates a loopback group of `nodes` endpoints with the default
    /// timeout.
    #[must_use]
    pub fn group(nodes: usize) -> Vec<LoopbackNet> {
        LoopbackNet::group_with_timeout(nodes, DEFAULT_TIMEOUT)
    }

    /// Creates a loopback group with an explicit receive timeout.
    #[must_use]
    pub fn group_with_timeout(nodes: usize, timeout: Duration) -> Vec<LoopbackNet> {
        assert!(nodes > 0, "a transport group needs at least one node");
        let boxes = Arc::new((0..nodes).map(|_| Mailbox::default()).collect::<Vec<_>>());
        (0..nodes)
            .map(|node| LoopbackNet {
                node,
                boxes: Arc::clone(&boxes),
                timeout,
            })
            .collect()
    }
}

impl Transport for LoopbackNet {
    fn node(&self) -> usize {
        self.node
    }

    fn nodes(&self) -> usize {
        self.boxes.len()
    }

    fn send(&mut self, to: usize, frame: &[u8]) -> Result<(), NetError> {
        let mbox = self.boxes.get(to).ok_or(NetError::Closed)?;
        let mut q = mbox.queue.lock().expect("loopback mailbox poisoned");
        q.push_back(frame.to_vec());
        drop(q);
        mbox.ready.notify_one();
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let mbox = &self.boxes[self.node];
        let mut q = mbox.queue.lock().expect("loopback mailbox poisoned");
        loop {
            if let Some(frame) = q.pop_front() {
                return Ok(frame);
            }
            let (guard, res) = mbox
                .ready
                .wait_timeout(q, self.timeout)
                .expect("loopback mailbox poisoned");
            q = guard;
            if res.timed_out() && q.is_empty() {
                return Err(NetError::Timeout);
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        let mbox = &self.boxes[self.node];
        let mut q = mbox.queue.lock().expect("loopback mailbox poisoned");
        Ok(q.pop_front())
    }

    /// One lock round-trip drains the whole mailbox.
    fn recv_burst(&mut self, out: &mut Vec<Vec<u8>>) -> Result<(), NetError> {
        let mbox = &self.boxes[self.node];
        let mut q = mbox.queue.lock().expect("loopback mailbox poisoned");
        loop {
            if !q.is_empty() {
                out.extend(q.drain(..));
                return Ok(());
            }
            let (guard, res) = mbox
                .ready
                .wait_timeout(q, self.timeout)
                .expect("loopback mailbox poisoned");
            q = guard;
            if res.timed_out() && q.is_empty() {
                return Err(NetError::Timeout);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_in_fifo_order_per_sender() {
        let mut eps = LoopbackNet::group(2);
        let (a, b) = {
            let b = eps.pop().unwrap();
            (eps.pop().unwrap(), b)
        };
        let mut a = a;
        let mut b = b;
        a.send(1, b"one").unwrap();
        a.send(1, b"two").unwrap();
        a.send(0, b"self").unwrap();
        assert_eq!(b.recv().unwrap(), b"one");
        assert_eq!(b.recv().unwrap(), b"two");
        assert_eq!(a.recv().unwrap(), b"self");
    }

    #[test]
    fn loopback_try_recv_and_burst_drain() {
        let mut eps = LoopbackNet::group(1);
        let mut a = eps.pop().unwrap();
        assert!(a.try_recv().unwrap().is_none());
        a.send(0, b"one").unwrap();
        a.send(0, b"two").unwrap();
        a.send(0, b"three").unwrap();
        assert_eq!(a.try_recv().unwrap().unwrap(), b"one");
        let mut burst = Vec::new();
        a.recv_burst(&mut burst).unwrap();
        assert_eq!(burst, vec![b"two".to_vec(), b"three".to_vec()]);
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn loopback_recv_times_out_when_empty() {
        let mut eps = LoopbackNet::group_with_timeout(1, Duration::from_millis(20));
        let err = eps[0].recv().unwrap_err();
        assert!(matches!(err, NetError::Timeout));
    }

    #[test]
    fn loopback_crosses_threads() {
        let mut eps = LoopbackNet::group(3);
        let mut c = eps.pop().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.send(2, b"from-a").unwrap();
            });
            s.spawn(move || {
                b.send(2, b"from-b").unwrap();
            });
            let mut got = vec![c.recv().unwrap(), c.recv().unwrap()];
            got.sort();
            assert_eq!(got, vec![b"from-a".to_vec(), b"from-b".to_vec()]);
        });
    }
}
