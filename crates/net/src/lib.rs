//! # pcrlb-net — message-passing runtime primitives
//!
//! Until this crate, every execution backend simulated the collision
//! protocol of Berenbrink–Friedetzky–Mayr (SPAA 1998) over shared
//! memory: the message ledger *counted* queries, accepts and transfers
//! but nothing was ever encoded or sent. This crate supplies the
//! physical layer that makes the paper's communication costs (Lemma 7
//! rounds-to-partner, Lemma 8 messages-per-phase) measurable as real
//! wire traffic:
//!
//! * [`wire`] — serializable twins of every protocol message
//!   ([`WireMsg`]: query/accept/id/probe/load-reply controls, task
//!   transfers, TCP hello), plus the [`ControlRecord`] / [`WireLog`]
//!   types the protocol layer uses to narrate its sends to the
//!   runtime;
//! * [`codec`] — a strict, compact, versioned little-endian binary
//!   codec (`magic ∥ version ∥ tag ∥ payload`) with exhaustive error
//!   reporting, plus the batched round frame ([`codec::BatchBuilder`]
//!   / [`codec::decode_batch`]) that coalesces everything one node
//!   sends a peer in one synchronization round behind a single
//!   watermark-carrying header;
//! * [`transport`] — the [`Transport`] trait (a group of per-node
//!   endpoints, with blocking, non-blocking, and burst receives) and
//!   the deterministic in-process [`LoopbackNet`];
//! * [`tcp`] — [`TcpNet`]: length-prefixed frames over non-blocking
//!   `std::net` sockets driven by a poll loop (no helper threads),
//!   with per-peer connection reuse, hello handshakes, and typed
//!   timeout/disconnect/handshake errors;
//! * [`stats`] — [`FrameStats`], counting frames and bytes that
//!   actually moved (as opposed to ledger increments).
//!
//! The crate is a dependency leaf (it depends only on `pcrlb-faults`
//! for fault coordinates); the `NetRuntime` that drives a simulation
//! over these transports lives in `pcrlb-sim::net`, which re-exports
//! the types below.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod stats;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use codec::{
    decode, decode_batch, encode, encode_into, encoded_len, BatchBuilder, BatchView, CodecError,
    MAGIC, PROTOCOL_VERSION,
};
pub use stats::FrameStats;
pub use tcp::TcpNet;
pub use transport::{LoopbackNet, NetError, Transport, DEFAULT_TIMEOUT};
pub use wire::{ControlKind, ControlRecord, WireLog, WireMsg, WireTask};
