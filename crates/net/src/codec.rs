//! Compact binary codec for [`WireMsg`] and the batched round frame.
//!
//! # Frame format
//!
//! Every frame is a versioned envelope followed by a little-endian
//! payload:
//!
//! ```text
//! offset  size  field
//! 0       2     magic   0x50 0x42 ("PB")
//! 2       1     version (currently 2)
//! 3       1     tag     (1=Hello, 2=Control, 3=Transfer, 5=Batch)
//! 4       ...   payload (fixed layout per tag, all integers LE)
//! ```
//!
//! Payloads:
//!
//! ```text
//! Hello     node:u32
//! Control   kind:u8  src:u64  dst:u64  nonce:u64  round:u32
//! Transfer  seq:u32  src:u64  dst:u64  count:u32  count × {id:u64 origin:u64 born:u64 weight:u32}
//! Batch     node:u32 round:u64 load:u64 count:u32 count × {len:u32 frame}
//! ```
//!
//! A **batch** is the unit the runtime actually puts on the wire: all
//! frames one node sends to one peer in one synchronization round,
//! coalesced behind a single header. The header's `round` is the
//! sender's per-peer watermark — receiving a peer's batch for round
//! `r` proves that peer has finished round `r` and sent everything it
//! ever will for it, so batches replace the old dedicated `Barrier`
//! frames (tag 4, retired with protocol version 1). `load` piggybacks
//! the sender's shard load as gossip. Each inner `frame` is a complete
//! envelope frame (`Control` or `Transfer`), so nesting reuses the
//! same strict decoder.
//!
//! The codec is strict: decoding rejects short frames, wrong magic,
//! unknown versions, unknown tags/kinds, oversized counts, nested
//! batches, and trailing bytes. Frames do **not** carry their own
//! length — the transports add a `u32` length prefix on the stream
//! (TCP) or deliver whole frames (loopback), so by the time `decode`
//! runs the frame boundary is already known.

use crate::wire::{ControlKind, WireMsg, WireTask};

/// Frame magic: "PB".
pub const MAGIC: [u8; 2] = [0x50, 0x42];

/// Current protocol version. Bump on any payload layout change.
/// Version 1 had a dedicated `Barrier` frame (tag 4) and no batches;
/// version 2 retired it in favour of the watermark-carrying `Batch`.
pub const PROTOCOL_VERSION: u8 = 2;

/// Sanity cap on tasks per transfer frame, guarding decoders against
/// corrupt or hostile length fields (a cap of 2^20 tasks ≈ 28 MiB).
pub const MAX_TASKS_PER_FRAME: usize = 1 << 20;

/// Sanity cap on frames per batch, same spirit as
/// [`MAX_TASKS_PER_FRAME`].
pub const MAX_FRAMES_PER_BATCH: usize = 1 << 22;

const TAG_HELLO: u8 = 1;
const TAG_CONTROL: u8 = 2;
const TAG_TRANSFER: u8 = 3;
const TAG_BATCH: u8 = 5;

/// Envelope bytes before any payload (magic + version + tag).
const ENVELOPE: usize = 4;

/// Batch payload header bytes (node + round + load + count).
const BATCH_HEADER: usize = 4 + 8 + 8 + 4;

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The frame ended before its payload was complete.
    Truncated,
    /// The first two bytes were not [`MAGIC`].
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame tag.
    BadTag(u8),
    /// Unknown control kind.
    BadKind(u8),
    /// Transfer frame declared more than [`MAX_TASKS_PER_FRAME`]
    /// tasks, or a batch declared more than [`MAX_FRAMES_PER_BATCH`]
    /// frames.
    Oversized(u64),
    /// Bytes left over after a complete payload.
    TrailingBytes,
    /// A batch frame arrived where a plain message was expected, or a
    /// batch contained another batch.
    UnexpectedBatch,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            CodecError::BadKind(k) => write!(f, "unknown control kind {k}"),
            CodecError::Oversized(n) => write!(f, "frame declares {n} items (over cap)"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after payload"),
            CodecError::UnexpectedBatch => write!(f, "batch frame in a non-batch position"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes `msg` into a fresh byte vector.
#[must_use]
pub fn encode(msg: &WireMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(msg));
    encode_into(msg, &mut out);
    out
}

/// Appends the encoding of `msg` to `out` without clearing it — the
/// buffer-reuse primitive behind [`encode`] and [`BatchBuilder`].
pub fn encode_into(msg: &WireMsg, out: &mut Vec<u8>) {
    out.reserve(encoded_len(msg));
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    match msg {
        WireMsg::Hello { node } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&node.to_le_bytes());
        }
        WireMsg::Control {
            kind,
            src,
            dst,
            nonce,
            round,
        } => {
            out.push(TAG_CONTROL);
            out.push(kind.tag());
            out.extend_from_slice(&src.to_le_bytes());
            out.extend_from_slice(&dst.to_le_bytes());
            out.extend_from_slice(&nonce.to_le_bytes());
            out.extend_from_slice(&round.to_le_bytes());
        }
        WireMsg::Transfer {
            seq,
            src,
            dst,
            tasks,
        } => {
            out.push(TAG_TRANSFER);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&src.to_le_bytes());
            out.extend_from_slice(&dst.to_le_bytes());
            out.extend_from_slice(&(tasks.len() as u32).to_le_bytes());
            for t in tasks {
                out.extend_from_slice(&t.id.to_le_bytes());
                out.extend_from_slice(&t.origin.to_le_bytes());
                out.extend_from_slice(&t.born.to_le_bytes());
                out.extend_from_slice(&t.weight.to_le_bytes());
            }
        }
    }
}

/// Exact encoded size of `msg`, envelope included.
#[must_use]
pub fn encoded_len(msg: &WireMsg) -> usize {
    ENVELOPE
        + match msg {
            WireMsg::Hello { .. } => 4,
            WireMsg::Control { .. } => 1 + 8 + 8 + 8 + 4,
            WireMsg::Transfer { tasks, .. } => 4 + 8 + 8 + 4 + tasks.len() * 28,
        }
}

/// Decodes one complete non-batch frame. Strict: see the module docs
/// for the rejection rules. Batch frames are rejected with
/// [`CodecError::UnexpectedBatch`]; use [`decode_batch`] for those.
pub fn decode(frame: &[u8]) -> Result<WireMsg, CodecError> {
    let mut r = Reader::new(frame);
    let tag = r.envelope()?;
    let msg = match tag {
        TAG_HELLO => WireMsg::Hello {
            node: r.take_u32()?,
        },
        TAG_CONTROL => {
            let kind_tag = r.take_u8()?;
            let kind = ControlKind::from_tag(kind_tag).ok_or(CodecError::BadKind(kind_tag))?;
            WireMsg::Control {
                kind,
                src: r.take_u64()?,
                dst: r.take_u64()?,
                nonce: r.take_u64()?,
                round: r.take_u32()?,
            }
        }
        TAG_TRANSFER => {
            let seq = r.take_u32()?;
            let src = r.take_u64()?;
            let dst = r.take_u64()?;
            let count = r.take_u32()? as u64;
            if count > MAX_TASKS_PER_FRAME as u64 {
                return Err(CodecError::Oversized(count));
            }
            let mut tasks = Vec::with_capacity(count as usize);
            for _ in 0..count {
                tasks.push(WireTask {
                    id: r.take_u64()?,
                    origin: r.take_u64()?,
                    born: r.take_u64()?,
                    weight: r.take_u32()?,
                });
            }
            WireMsg::Transfer {
                seq,
                src,
                dst,
                tasks,
            }
        }
        TAG_BATCH => return Err(CodecError::UnexpectedBatch),
        other => return Err(CodecError::BadTag(other)),
    };
    if !r.is_empty() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(msg)
}

/// Incrementally builds one batch frame into a reusable buffer.
///
/// The builder is the runtime's per-node encode scratch: `begin` once
/// per (peer, round), `push_*` for every coalesced message, `finish`
/// to patch the count and borrow the bytes for the transport. No
/// allocation happens in steady state — the buffer is cleared, never
/// shrunk.
#[derive(Debug, Default)]
pub struct BatchBuilder {
    buf: Vec<u8>,
    count: u32,
}

impl BatchBuilder {
    /// Empty builder.
    #[must_use]
    pub fn new() -> Self {
        BatchBuilder::default()
    }

    /// Starts a fresh batch, clearing any previous contents.
    pub fn begin(&mut self, node: u32, round: u64, load: u64) {
        self.buf.clear();
        self.count = 0;
        self.buf.extend_from_slice(&MAGIC);
        self.buf.push(PROTOCOL_VERSION);
        self.buf.push(TAG_BATCH);
        self.buf.extend_from_slice(&node.to_le_bytes());
        self.buf.extend_from_slice(&round.to_le_bytes());
        self.buf.extend_from_slice(&load.to_le_bytes());
        self.buf.extend_from_slice(&0u32.to_le_bytes()); // count, patched
    }

    /// Appends one already-encoded envelope frame. Returns its length
    /// in bytes (the logical frame size, excluding the `len` prefix).
    pub fn push_raw(&mut self, frame: &[u8]) -> usize {
        self.buf
            .extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(frame);
        self.count += 1;
        frame.len()
    }

    /// Encodes `msg` directly into the batch. Returns the encoded
    /// frame length in bytes.
    pub fn push(&mut self, msg: &WireMsg) -> usize {
        let len = encoded_len(msg);
        self.buf.extend_from_slice(&(len as u32).to_le_bytes());
        encode_into(msg, &mut self.buf);
        self.count += 1;
        len
    }

    /// Number of frames pushed since `begin`.
    #[must_use]
    pub fn frames(&self) -> u32 {
        self.count
    }

    /// Patches the frame count and returns the finished batch bytes.
    /// The builder stays reusable: the next `begin` starts over.
    pub fn finish(&mut self) -> &[u8] {
        let count_off = ENVELOPE + BATCH_HEADER - 4;
        self.buf[count_off..count_off + 4].copy_from_slice(&self.count.to_le_bytes());
        &self.buf
    }
}

/// A decoded batch header plus an iterator over the contained frames.
#[derive(Debug)]
pub struct BatchView<'a> {
    /// Sending node.
    pub node: u32,
    /// The synchronization round this batch closes (the sender's
    /// watermark: nothing more will arrive from `node` for any round
    /// ≤ `round`).
    pub round: u64,
    /// The sender's shard load, piggybacked as gossip.
    pub load: u64,
    remaining: u32,
    rest: &'a [u8],
}

impl<'a> Iterator for BatchView<'a> {
    /// Each inner frame as a raw envelope slice; decode with
    /// [`decode`]. Yields an error (then stops) on truncation.
    type Item = Result<&'a [u8], CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return if self.rest.is_empty() {
                None
            } else {
                self.remaining = u32::MAX; // poison: stop after the error
                self.rest = &[];
                Some(Err(CodecError::TrailingBytes))
            };
        }
        if self.remaining == u32::MAX {
            return None;
        }
        let mut r = Reader::new(self.rest);
        let frame = (|| {
            let len = r.take_u32()? as usize;
            r.take_bytes(len)
        })();
        match frame {
            Ok(frame) => {
                self.remaining -= 1;
                self.rest = r.buf;
                Some(Ok(frame))
            }
            Err(e) => {
                self.remaining = u32::MAX;
                self.rest = &[];
                Some(Err(e))
            }
        }
    }
}

/// Decodes a batch frame's header, returning a [`BatchView`] that
/// iterates the contained frames without copying them.
pub fn decode_batch(frame: &[u8]) -> Result<BatchView<'_>, CodecError> {
    let mut r = Reader::new(frame);
    let tag = r.envelope()?;
    if tag != TAG_BATCH {
        return Err(CodecError::BadTag(tag));
    }
    let node = r.take_u32()?;
    let round = r.take_u64()?;
    let load = r.take_u64()?;
    let count = r.take_u32()?;
    if count as usize > MAX_FRAMES_PER_BATCH {
        return Err(CodecError::Oversized(u64::from(count)));
    }
    Ok(BatchView {
        node,
        round,
        load,
        remaining: count,
        rest: r.buf,
    })
}

/// Cursor over a frame's bytes.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes and validates magic + version, returning the tag.
    fn envelope(&mut self) -> Result<u8, CodecError> {
        if self.take_bytes(2)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = self.take_u8()?;
        if version != PROTOCOL_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        self.take_u8()
    }

    fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_bytes(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_bytes(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<WireMsg> {
        vec![
            WireMsg::Hello { node: 3 },
            WireMsg::Control {
                kind: ControlKind::Query,
                src: 12,
                dst: 99,
                nonce: 0xDEAD_BEEF,
                round: 4,
            },
            WireMsg::Transfer {
                seq: 7,
                src: 1,
                dst: 2,
                tasks: vec![
                    WireTask {
                        id: 10,
                        origin: 1,
                        born: 55,
                        weight: 1,
                    },
                    WireTask {
                        id: 11,
                        origin: 1,
                        born: 56,
                        weight: 3,
                    },
                ],
            },
            WireMsg::Transfer {
                seq: 0,
                src: 0,
                dst: 0,
                tasks: vec![],
            },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        for msg in sample_msgs() {
            let bytes = encode(&msg);
            assert_eq!(bytes.len(), encoded_len(&msg));
            assert_eq!(decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        for msg in sample_msgs() {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                let err = decode(&bytes[..cut]).unwrap_err();
                assert!(
                    matches!(err, CodecError::Truncated | CodecError::BadMagic),
                    "cut={cut} gave {err:?}"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_magic_version_tag_kind_trailing() {
        let good = encode(&WireMsg::Hello { node: 1 });
        let mut bad = good.clone();
        bad[0] = 0xFF;
        assert_eq!(decode(&bad).unwrap_err(), CodecError::BadMagic);
        let mut bad = good.clone();
        bad[2] = PROTOCOL_VERSION + 1;
        assert_eq!(
            decode(&bad).unwrap_err(),
            CodecError::BadVersion(PROTOCOL_VERSION + 1)
        );
        let mut bad = good.clone();
        bad[3] = 0xEE;
        assert_eq!(decode(&bad).unwrap_err(), CodecError::BadTag(0xEE));
        // The retired v1 Barrier tag is an unknown tag in v2.
        let mut bad = good.clone();
        bad[3] = 4;
        assert_eq!(decode(&bad).unwrap_err(), CodecError::BadTag(4));
        let mut bad = good.clone();
        bad.push(0);
        assert_eq!(decode(&bad).unwrap_err(), CodecError::TrailingBytes);
        let mut bad = encode(&WireMsg::Control {
            kind: ControlKind::Probe,
            src: 0,
            dst: 0,
            nonce: 0,
            round: 0,
        });
        bad[4] = 0;
        assert_eq!(decode(&bad).unwrap_err(), CodecError::BadKind(0));
    }

    #[test]
    fn rejects_oversized_task_count() {
        let mut bytes = encode(&WireMsg::Transfer {
            seq: 0,
            src: 0,
            dst: 0,
            tasks: vec![],
        });
        let count_off = bytes.len() - 4;
        bytes[count_off..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode(&bytes).unwrap_err(),
            CodecError::Oversized(u64::from(u32::MAX))
        );
    }

    #[test]
    fn batch_round_trips_header_and_frames() {
        let msgs = sample_msgs();
        let mut b = BatchBuilder::new();
        b.begin(6, 41, 1234);
        let mut pushed = 0usize;
        for msg in &msgs {
            pushed += b.push(msg);
        }
        assert_eq!(b.frames(), msgs.len() as u32);
        let bytes = b.finish().to_vec();
        assert_eq!(
            bytes.len(),
            ENVELOPE + BATCH_HEADER + pushed + 4 * msgs.len()
        );
        let view = decode_batch(&bytes).unwrap();
        assert_eq!((view.node, view.round, view.load), (6, 41, 1234));
        let decoded: Vec<WireMsg> = view.map(|f| decode(f.unwrap()).unwrap()).collect();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn empty_batch_is_a_pure_watermark() {
        let mut b = BatchBuilder::new();
        b.begin(0, 7, 0);
        let bytes = b.finish().to_vec();
        assert_eq!(bytes.len(), ENVELOPE + BATCH_HEADER);
        let mut view = decode_batch(&bytes).unwrap();
        assert_eq!(view.round, 7);
        assert!(view.next().is_none());
    }

    #[test]
    fn builder_is_reusable_without_leaking_frames() {
        let mut b = BatchBuilder::new();
        b.begin(1, 1, 0);
        b.push(&WireMsg::Hello { node: 9 });
        let first = b.finish().to_vec();
        b.begin(2, 2, 5);
        let second = b.finish().to_vec();
        assert!(second.len() < first.len());
        let mut view = decode_batch(&second).unwrap();
        assert_eq!((view.node, view.round, view.load), (2, 2, 5));
        assert!(view.next().is_none());
    }

    #[test]
    fn batch_decode_rejects_corruption() {
        // A plain frame is not a batch.
        let plain = encode(&WireMsg::Hello { node: 1 });
        assert_eq!(decode_batch(&plain).unwrap_err(), CodecError::BadTag(1));
        // A batch is not a plain frame.
        let mut b = BatchBuilder::new();
        b.begin(0, 1, 0);
        let bytes = b.finish().to_vec();
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::UnexpectedBatch);
        // Truncated inner frame surfaces through the iterator.
        let mut b = BatchBuilder::new();
        b.begin(0, 1, 0);
        b.push(&WireMsg::Hello { node: 1 });
        let full = b.finish().to_vec();
        let cut = &full[..full.len() - 2];
        let mut view = decode_batch(cut).unwrap();
        assert_eq!(view.next().unwrap().unwrap_err(), CodecError::Truncated);
        assert!(view.next().is_none());
        // Count larger than contents: iterator errors instead of
        // over-reading.
        let mut bytes = full.clone();
        let count_off = ENVELOPE + BATCH_HEADER - 4;
        bytes[count_off..count_off + 4].copy_from_slice(&2u32.to_le_bytes());
        let view = decode_batch(&bytes).unwrap();
        let items: Vec<_> = view.collect();
        assert_eq!(items.len(), 2);
        assert!(items[0].is_ok());
        assert!(items[1].is_err());
        // Trailing garbage after the declared count.
        let mut bytes = full.clone();
        bytes.push(0);
        let view = decode_batch(&bytes).unwrap();
        let items: Vec<_> = view.collect();
        assert_eq!(
            items.last().unwrap().unwrap_err(),
            CodecError::TrailingBytes
        );
    }
}
