//! Compact binary codec for [`WireMsg`].
//!
//! # Frame format
//!
//! Every frame is a versioned envelope followed by a little-endian
//! payload:
//!
//! ```text
//! offset  size  field
//! 0       2     magic   0x50 0x42 ("PB")
//! 2       1     version (currently 1)
//! 3       1     tag     (1=Hello, 2=Control, 3=Transfer, 4=Barrier)
//! 4       ...   payload (fixed layout per tag, all integers LE)
//! ```
//!
//! Payloads:
//!
//! ```text
//! Hello     node:u32
//! Control   kind:u8  src:u64  dst:u64  nonce:u64  round:u32
//! Transfer  seq:u32  src:u64  dst:u64  count:u32  count × {id:u64 origin:u64 born:u64 weight:u32}
//! Barrier   node:u32 step:u64 load:u64
//! ```
//!
//! The codec is strict: decoding rejects short frames, wrong magic,
//! unknown versions, unknown tags/kinds, oversized task counts, and
//! trailing bytes. Frames do **not** carry their own length — the
//! transports add a `u32` length prefix on the stream (TCP) or deliver
//! whole frames (loopback), so by the time `decode` runs the frame
//! boundary is already known.

use crate::wire::{ControlKind, WireMsg, WireTask};

/// Frame magic: "PB".
pub const MAGIC: [u8; 2] = [0x50, 0x42];

/// Current protocol version. Bump on any payload layout change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Sanity cap on tasks per transfer frame, guarding decoders against
/// corrupt or hostile length fields (a cap of 2^20 tasks ≈ 28 MiB).
pub const MAX_TASKS_PER_FRAME: usize = 1 << 20;

const TAG_HELLO: u8 = 1;
const TAG_CONTROL: u8 = 2;
const TAG_TRANSFER: u8 = 3;
const TAG_BARRIER: u8 = 4;

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The frame ended before its payload was complete.
    Truncated,
    /// The first two bytes were not [`MAGIC`].
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame tag.
    BadTag(u8),
    /// Unknown control kind.
    BadKind(u8),
    /// Transfer frame declared more than [`MAX_TASKS_PER_FRAME`] tasks.
    Oversized(u64),
    /// Bytes left over after a complete payload.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            CodecError::BadKind(k) => write!(f, "unknown control kind {k}"),
            CodecError::Oversized(n) => write!(f, "transfer declares {n} tasks (over cap)"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes `msg` into a fresh byte vector.
#[must_use]
pub fn encode(msg: &WireMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(msg));
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    match msg {
        WireMsg::Hello { node } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&node.to_le_bytes());
        }
        WireMsg::Control {
            kind,
            src,
            dst,
            nonce,
            round,
        } => {
            out.push(TAG_CONTROL);
            out.push(kind.tag());
            out.extend_from_slice(&src.to_le_bytes());
            out.extend_from_slice(&dst.to_le_bytes());
            out.extend_from_slice(&nonce.to_le_bytes());
            out.extend_from_slice(&round.to_le_bytes());
        }
        WireMsg::Transfer {
            seq,
            src,
            dst,
            tasks,
        } => {
            out.push(TAG_TRANSFER);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&src.to_le_bytes());
            out.extend_from_slice(&dst.to_le_bytes());
            out.extend_from_slice(&(tasks.len() as u32).to_le_bytes());
            for t in tasks {
                out.extend_from_slice(&t.id.to_le_bytes());
                out.extend_from_slice(&t.origin.to_le_bytes());
                out.extend_from_slice(&t.born.to_le_bytes());
                out.extend_from_slice(&t.weight.to_le_bytes());
            }
        }
        WireMsg::Barrier { node, step, load } => {
            out.push(TAG_BARRIER);
            out.extend_from_slice(&node.to_le_bytes());
            out.extend_from_slice(&step.to_le_bytes());
            out.extend_from_slice(&load.to_le_bytes());
        }
    }
    out
}

/// Exact encoded size of `msg`, envelope included.
#[must_use]
pub fn encoded_len(msg: &WireMsg) -> usize {
    4 + match msg {
        WireMsg::Hello { .. } => 4,
        WireMsg::Control { .. } => 1 + 8 + 8 + 8 + 4,
        WireMsg::Transfer { tasks, .. } => 4 + 8 + 8 + 4 + tasks.len() * 28,
        WireMsg::Barrier { .. } => 4 + 8 + 8,
    }
}

/// Decodes one complete frame. Strict: see the module docs for the
/// rejection rules.
pub fn decode(frame: &[u8]) -> Result<WireMsg, CodecError> {
    let mut r = Reader::new(frame);
    if r.take_bytes(2)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.take_u8()?;
    if version != PROTOCOL_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let tag = r.take_u8()?;
    let msg = match tag {
        TAG_HELLO => WireMsg::Hello {
            node: r.take_u32()?,
        },
        TAG_CONTROL => {
            let kind_tag = r.take_u8()?;
            let kind = ControlKind::from_tag(kind_tag).ok_or(CodecError::BadKind(kind_tag))?;
            WireMsg::Control {
                kind,
                src: r.take_u64()?,
                dst: r.take_u64()?,
                nonce: r.take_u64()?,
                round: r.take_u32()?,
            }
        }
        TAG_TRANSFER => {
            let seq = r.take_u32()?;
            let src = r.take_u64()?;
            let dst = r.take_u64()?;
            let count = r.take_u32()? as u64;
            if count > MAX_TASKS_PER_FRAME as u64 {
                return Err(CodecError::Oversized(count));
            }
            let mut tasks = Vec::with_capacity(count as usize);
            for _ in 0..count {
                tasks.push(WireTask {
                    id: r.take_u64()?,
                    origin: r.take_u64()?,
                    born: r.take_u64()?,
                    weight: r.take_u32()?,
                });
            }
            WireMsg::Transfer {
                seq,
                src,
                dst,
                tasks,
            }
        }
        TAG_BARRIER => WireMsg::Barrier {
            node: r.take_u32()?,
            step: r.take_u64()?,
            load: r.take_u64()?,
        },
        other => return Err(CodecError::BadTag(other)),
    };
    if !r.is_empty() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(msg)
}

/// Cursor over a frame's bytes.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_bytes(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_bytes(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<WireMsg> {
        vec![
            WireMsg::Hello { node: 3 },
            WireMsg::Control {
                kind: ControlKind::Query,
                src: 12,
                dst: 99,
                nonce: 0xDEAD_BEEF,
                round: 4,
            },
            WireMsg::Transfer {
                seq: 7,
                src: 1,
                dst: 2,
                tasks: vec![
                    WireTask {
                        id: 10,
                        origin: 1,
                        born: 55,
                        weight: 1,
                    },
                    WireTask {
                        id: 11,
                        origin: 1,
                        born: 56,
                        weight: 3,
                    },
                ],
            },
            WireMsg::Transfer {
                seq: 0,
                src: 0,
                dst: 0,
                tasks: vec![],
            },
            WireMsg::Barrier {
                node: 2,
                step: 1000,
                load: 12345,
            },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        for msg in sample_msgs() {
            let bytes = encode(&msg);
            assert_eq!(bytes.len(), encoded_len(&msg));
            assert_eq!(decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        for msg in sample_msgs() {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                let err = decode(&bytes[..cut]).unwrap_err();
                assert!(
                    matches!(err, CodecError::Truncated | CodecError::BadMagic),
                    "cut={cut} gave {err:?}"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_magic_version_tag_kind_trailing() {
        let good = encode(&WireMsg::Hello { node: 1 });
        let mut bad = good.clone();
        bad[0] = 0xFF;
        assert_eq!(decode(&bad).unwrap_err(), CodecError::BadMagic);
        let mut bad = good.clone();
        bad[2] = PROTOCOL_VERSION + 1;
        assert_eq!(
            decode(&bad).unwrap_err(),
            CodecError::BadVersion(PROTOCOL_VERSION + 1)
        );
        let mut bad = good.clone();
        bad[3] = 0xEE;
        assert_eq!(decode(&bad).unwrap_err(), CodecError::BadTag(0xEE));
        let mut bad = good.clone();
        bad.push(0);
        assert_eq!(decode(&bad).unwrap_err(), CodecError::TrailingBytes);
        let mut bad = encode(&WireMsg::Control {
            kind: ControlKind::Probe,
            src: 0,
            dst: 0,
            nonce: 0,
            round: 0,
        });
        bad[4] = 0;
        assert_eq!(decode(&bad).unwrap_err(), CodecError::BadKind(0));
    }

    #[test]
    fn rejects_oversized_task_count() {
        let mut bytes = encode(&WireMsg::Transfer {
            seq: 0,
            src: 0,
            dst: 0,
            tasks: vec![],
        });
        let count_off = bytes.len() - 4;
        bytes[count_off..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode(&bytes).unwrap_err(),
            CodecError::Oversized(u64::from(u32::MAX))
        );
    }
}
