//! Frame-level traffic statistics.

use std::ops::{Add, AddAssign, Sub};

/// Counts of frames and bytes moved by a transport endpoint (or
/// aggregated over all endpoints of a run). Unlike the simulator's
/// `MessageStats` ledger — which counts *logical* protocol messages at
/// decision time — these numbers are incremented only when bytes are
/// actually encoded and handed to (or received from) a transport.
///
/// Since the batched runtime, the wire carries one *batch* frame per
/// (peer, round) pair; `frames_*` counts the logical envelope frames
/// coalesced inside those batches (so the ledger equalities survive
/// batching unchanged), while `batches_*` counts what physically hit
/// the transport.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Frames charged to the sender — including frames the transport
    /// then dropped on fault-model orders (the sender pays at send
    /// time, the Lemma 8 charging rule), so globally
    /// `frames_sent == frames_received + frames_dropped`.
    pub frames_sent: u64,
    /// Frames received from the transport.
    pub frames_received: u64,
    /// Encoded bytes sent (envelope included, length prefix excluded).
    pub bytes_sent: u64,
    /// Encoded bytes received.
    pub bytes_received: u64,
    /// Control frames sent (query/accept/id/probe/load-reply).
    pub control_frames: u64,
    /// Transfer frames sent.
    pub transfer_frames: u64,
    /// Empty batches sent purely to advance a peer's round watermark
    /// (the successor of the retired per-round barrier frames).
    pub sync_frames: u64,
    /// Physical batch frames handed to the transport. Every batch
    /// coalesces all logical frames for one (peer, round) pair, so
    /// this is exactly `nodes × (nodes − 1) × rounds` regardless of
    /// traffic.
    pub batches_sent: u64,
    /// Physical batch frames received from the transport.
    pub batches_received: u64,
    /// Frames the transport dropped on fault-model orders, i.e. the
    /// physical realization of `FaultModel::frame_dropped`.
    pub frames_dropped: u64,
    /// Tasks carried inside sent transfer frames.
    pub payload_tasks: u64,
    /// Shard-takeover events under elastic membership: frames
    /// abandoned on a departed peer (send or recv side) plus transfers
    /// the coordinator recovered from its retained copies. Always 0
    /// without churn, where a lost peer is fatal instead.
    pub takeovers: u64,
}

impl FrameStats {
    /// Zeroed stats.
    #[must_use]
    pub fn new() -> Self {
        FrameStats::default()
    }

    /// Records one sent frame of `len` bytes.
    #[inline]
    pub fn record_sent(&mut self, len: usize) {
        self.frames_sent += 1;
        self.bytes_sent += len as u64;
    }

    /// Records one received frame of `len` bytes.
    #[inline]
    pub fn record_received(&mut self, len: usize) {
        self.frames_received += 1;
        self.bytes_received += len as u64;
    }
}

impl Add for FrameStats {
    type Output = FrameStats;
    fn add(mut self, rhs: FrameStats) -> FrameStats {
        self += rhs;
        self
    }
}

impl AddAssign for FrameStats {
    fn add_assign(&mut self, rhs: FrameStats) {
        self.frames_sent += rhs.frames_sent;
        self.frames_received += rhs.frames_received;
        self.bytes_sent += rhs.bytes_sent;
        self.bytes_received += rhs.bytes_received;
        self.control_frames += rhs.control_frames;
        self.transfer_frames += rhs.transfer_frames;
        self.sync_frames += rhs.sync_frames;
        self.batches_sent += rhs.batches_sent;
        self.batches_received += rhs.batches_received;
        self.frames_dropped += rhs.frames_dropped;
        self.payload_tasks += rhs.payload_tasks;
        self.takeovers += rhs.takeovers;
    }
}

impl Sub for FrameStats {
    type Output = FrameStats;
    /// Windowed difference; panics in debug builds if `rhs` is not an
    /// earlier snapshot of the same counters.
    fn sub(self, rhs: FrameStats) -> FrameStats {
        FrameStats {
            frames_sent: self.frames_sent - rhs.frames_sent,
            frames_received: self.frames_received - rhs.frames_received,
            bytes_sent: self.bytes_sent - rhs.bytes_sent,
            bytes_received: self.bytes_received - rhs.bytes_received,
            control_frames: self.control_frames - rhs.control_frames,
            transfer_frames: self.transfer_frames - rhs.transfer_frames,
            sync_frames: self.sync_frames - rhs.sync_frames,
            batches_sent: self.batches_sent - rhs.batches_sent,
            batches_received: self.batches_received - rhs.batches_received,
            frames_dropped: self.frames_dropped - rhs.frames_dropped,
            payload_tasks: self.payload_tasks - rhs.payload_tasks,
            takeovers: self.takeovers - rhs.takeovers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sums_fieldwise() {
        let mut a = FrameStats::new();
        a.record_sent(10);
        a.record_sent(20);
        a.control_frames = 2;
        let mut b = FrameStats::new();
        b.record_received(30);
        b.frames_dropped = 1;
        b.sync_frames = 3;
        b.batches_sent = 4;
        b.batches_received = 4;
        let sum = a + b;
        assert_eq!(sum.frames_sent, 2);
        assert_eq!(sum.bytes_sent, 30);
        assert_eq!(sum.frames_received, 1);
        assert_eq!(sum.bytes_received, 30);
        assert_eq!(sum.control_frames, 2);
        assert_eq!(sum.frames_dropped, 1);
        assert_eq!(sum.sync_frames, 3);
        assert_eq!(sum.batches_sent, 4);
        assert_eq!(sum.batches_received, 4);
        let diff = sum - b;
        assert_eq!(diff.batches_sent, 0);
        assert_eq!(diff.frames_sent, 2);
    }
}
