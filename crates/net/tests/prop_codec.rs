//! Property tests for the wire codec (vendored proptest): every
//! message kind round-trips through encode/decode at arbitrary field
//! values and payload sizes, arbitrary mixes of messages round-trip
//! through the batch frame, and the decoder rejects truncated frames,
//! foreign versions, corrupted magic, and trailing garbage.

use pcrlb_net::{
    codec, decode, decode_batch, encode, encoded_len, BatchBuilder, CodecError, ControlKind,
    WireMsg, WireTask, PROTOCOL_VERSION,
};
use proptest::prelude::*;

fn arb_task() -> BoxedStrategy<WireTask> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u32>())
        .prop_map(|(id, origin, born, weight)| WireTask {
            id,
            origin,
            born,
            weight,
        })
        .boxed()
}

fn arb_kind() -> BoxedStrategy<ControlKind> {
    any::<u32>()
        .prop_map(|v| ControlKind::ALL[(v % 5) as usize])
        .boxed()
}

fn arb_msg() -> BoxedStrategy<WireMsg> {
    prop_oneof![
        any::<u32>().prop_map(|node| WireMsg::Hello { node }),
        (
            arb_kind(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>()
        )
            .prop_map(|(kind, src, dst, nonce, round)| WireMsg::Control {
                kind,
                src,
                dst,
                nonce,
                round,
            }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(arb_task(), 0..300),
        )
            .prop_map(|(seq, src, dst, tasks)| WireMsg::Transfer {
                seq,
                src,
                dst,
                tasks,
            }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity for every message kind, at
    /// arbitrary field values and transfer payload sizes.
    #[test]
    fn round_trip(msg in arb_msg()) {
        let bytes = encode(&msg);
        prop_assert_eq!(bytes.len(), encoded_len(&msg));
        prop_assert_eq!(decode(&bytes).unwrap(), msg);
    }

    /// Any strict prefix of a valid frame is rejected (as truncated,
    /// or as bad magic when even the magic is cut short).
    #[test]
    fn rejects_truncation(msg in arb_msg(), frac in any::<u64>()) {
        let bytes = encode(&msg);
        let cut = (frac % bytes.len() as u64) as usize;
        let err = decode(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, CodecError::Truncated | CodecError::BadMagic),
            "cut={} gave {:?}", cut, err
        );
    }

    /// Every version byte other than the current one is rejected as
    /// BadVersion, regardless of the rest of the frame.
    #[test]
    fn rejects_foreign_versions(msg in arb_msg(), v in any::<u32>()) {
        let version = (v % 256) as u8;
        let mut bytes = encode(&msg);
        bytes[2] = version;
        if version == PROTOCOL_VERSION {
            prop_assert_eq!(decode(&bytes).unwrap(), msg);
        } else {
            prop_assert_eq!(decode(&bytes).unwrap_err(), CodecError::BadVersion(version));
        }
    }

    /// Corrupting either magic byte is always detected.
    #[test]
    fn rejects_bad_magic(msg in arb_msg(), which in any::<bool>(), x in any::<u32>()) {
        let mut bytes = encode(&msg);
        let idx = usize::from(which);
        let orig = bytes[idx];
        let corrupt = (x % 256) as u8;
        if corrupt == orig {
            return Ok(());
        }
        bytes[idx] = corrupt;
        prop_assert_eq!(decode(&bytes).unwrap_err(), CodecError::BadMagic);
    }

    /// Appending any extra bytes to a complete frame is rejected.
    #[test]
    fn rejects_trailing_bytes(msg in arb_msg(), extra in proptest::collection::vec(any::<u32>(), 1..16)) {
        let mut bytes = encode(&msg);
        bytes.extend(extra.iter().map(|&b| (b % 256) as u8));
        prop_assert_eq!(decode(&bytes).unwrap_err(), CodecError::TrailingBytes);
    }

    /// The declared task count is bounded: counts over the cap are
    /// rejected before any allocation is attempted.
    #[test]
    fn rejects_oversized_counts(seq in any::<u32>(), src in any::<u64>(), dst in any::<u64>(), over in any::<u32>()) {
        let mut bytes = encode(&WireMsg::Transfer { seq, src, dst, tasks: vec![] });
        let cap = codec::MAX_TASKS_PER_FRAME as u64;
        let count = cap + 1 + u64::from(over) % cap;
        let off = bytes.len() - 4;
        bytes[off..].copy_from_slice(&(count as u32).to_le_bytes());
        match decode(&bytes).unwrap_err() {
            CodecError::Oversized(n) => prop_assert_eq!(n, count),
            CodecError::Truncated => prop_assert!(false, "cap not enforced"),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Arbitrary mixes of messages round-trip through a batch frame:
    /// the watermark header survives, every sub-frame decodes to the
    /// original message in order, and a reused builder carries no state
    /// across batches.
    #[test]
    fn batch_round_trip(
        msgs in proptest::collection::vec(arb_msg(), 0..24),
        node in any::<u32>(),
        round in any::<u64>(),
        load in any::<u64>(),
    ) {
        let mut batch = BatchBuilder::new();
        for reuse in 0u64..2 {
            batch.begin(node, round ^ reuse, load);
            let mut payload = 0;
            for msg in &msgs {
                payload += batch.push(msg);
            }
            prop_assert_eq!(batch.frames(), msgs.len() as u32);
            let frame = batch.finish().to_vec();
            prop_assert!(frame.len() > payload, "header/prefixes must cost bytes");

            let view = decode_batch(&frame).unwrap();
            prop_assert_eq!(view.node, node);
            prop_assert_eq!(view.round, round ^ reuse);
            prop_assert_eq!(view.load, load);
            let decoded: Vec<WireMsg> = view
                .map(|sub| decode(sub.unwrap()).unwrap())
                .collect();
            prop_assert_eq!(&decoded, &msgs);
        }
    }

    /// A batch frame is not a plain frame: the strict single-message
    /// decoder refuses it instead of misparsing the header.
    #[test]
    fn plain_decode_rejects_batches(node in any::<u32>(), round in any::<u64>(), load in any::<u64>()) {
        let mut batch = BatchBuilder::new();
        batch.begin(node, round, load);
        prop_assert_eq!(decode(batch.finish()).unwrap_err(), CodecError::UnexpectedBatch);
    }
}
