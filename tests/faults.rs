//! Fault-injection integration suite: the determinism contract under
//! faults (bit-identical reports across backends for the same
//! `(seed, fault_seed)`), the Reliable-equivalence guarantee, liveness
//! at double-digit loss rates, the graceful-degradation sweep against
//! the `(log log n)^2` bound, the `O(1/(1-p)^2)` rounds-to-partner
//! shape, and Lemma 8's per-phase message accounting.

use pcrlb::collision::{play_game, play_game_faulty, CollisionParams};
use pcrlb::core::BalancerConfig;
use pcrlb::prelude::*;
use pcrlb::sim::{Bernoulli, GameFaults};

/// A fault mix exercising every channel: loss, delay, crash, stall.
fn chaos_config() -> FaultConfig {
    FaultConfig::reliable()
        .with_seed(17)
        .with_loss(0.05)
        .with_delays(0.1, 2)
        .with_crashes(0.02, 64)
        .with_stalls(0.02, 32)
}

fn run_faulty(n: usize, seed: u64, steps: u64, backend: Backend, faults: FaultConfig) -> RunReport {
    Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(ThresholdBalancer::new(
            BalancerConfig::paper(n).with_retry_backoff(8),
        ))
        .backend(backend)
        .faults(faults)
        .probe(MaxLoadProbe::new())
        .probe(FaultProbe::new())
        .run(steps)
}

#[test]
fn reliable_fault_config_is_bit_identical_to_no_fault_config() {
    // Passing `FaultConfig::reliable()` must not install a fault model
    // at all: the run takes exactly the historic fault-free code path.
    let n = 256;
    let run = |with_config: bool| {
        let mut runner = Runner::new(n, 23)
            .model(Single::default_paper())
            .strategy(ThresholdBalancer::paper(n))
            .probe(MaxLoadProbe::new());
        if with_config {
            runner = runner.faults(FaultConfig::reliable());
        }
        runner.run(600)
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn runner_reports_identical_across_backends_with_faults() {
    // The strongest determinism claim: with loss, delays, crashes and
    // stalls all active, the *entire* report — final loads, completion
    // histogram, message totals including drops, and every probe
    // output — is bit-identical across all three backends.
    let n = 300;
    let seq = run_faulty(n, 7, 500, Backend::Sequential, chaos_config());
    match seq.probe("faults") {
        Some(ProbeOutput::Faults {
            dropped_messages, ..
        }) => assert!(*dropped_messages > 0, "5% loss dropped nothing"),
        other => panic!("unexpected probe output: {other:?}"),
    }
    for threads in [2usize, 4] {
        let mut thr = run_faulty(n, 7, 500, Backend::Threaded(threads), chaos_config());
        assert_eq!(thr.backend, "threaded");
        thr.backend = seq.backend;
        assert_eq!(seq, thr, "threads={threads}");

        let mut pooled = run_faulty(n, 7, 500, Backend::Pooled(threads), chaos_config());
        assert_eq!(pooled.backend, "pooled");
        pooled.backend = seq.backend;
        assert_eq!(seq, pooled, "pool threads={threads}");
    }
}

#[test]
fn fault_seed_rerolls_faults_without_touching_the_workload() {
    let n = 256;
    let report = |fault_seed: u64| {
        run_faulty(
            n,
            5,
            500,
            Backend::Sequential,
            chaos_config().with_seed(fault_seed),
        )
    };
    let a = report(1);
    let b = report(2);
    // Different fault schedules...
    assert_ne!(a, b, "fault seed had no effect");
    // ...but the same workload: generation is driven by the world's own
    // RNG streams, which the fault layer never touches, so totals stay
    // in the same regime (tasks are still generated and completed).
    assert!(a.completions.count > 0 && b.completions.count > 0);
}

#[test]
fn no_deadlock_or_blowup_at_ten_percent_loss() {
    // The acceptance ceiling from the issue: at 10% message loss the
    // system must neither deadlock (the run finishes, work completes)
    // nor lose its load bound entirely.
    let n = 512;
    let faults = FaultConfig::reliable()
        .with_seed(3)
        .with_loss(0.10)
        .with_delays(0.05, 2);
    let report = run_faulty(n, 41, 3_000, Backend::Sequential, faults);
    assert!(report.completions.count > 0, "nothing completed");
    let t = BalancerConfig::paper(n).theorem1_bound();
    let worst = report.worst_max_load().unwrap();
    assert!(
        worst <= 4 * t,
        "max load {worst} lost the (log log n)^2 regime (4T = {})",
        4 * t
    );
}

#[test]
fn degradation_sweep_max_load_normalizes_against_loglog_squared() {
    // Graceful degradation: as loss climbs 0% → 1% → 5% → 10%, the
    // worst max load may drift upward but must stay within a constant
    // multiple of T = (log log n)^2 at every rate.
    let n = 1024;
    let t = BalancerConfig::paper(n).theorem1_bound();
    let mut worst_by_rate = Vec::new();
    for loss in [0.0, 0.01, 0.05, 0.10] {
        let faults = FaultConfig::reliable().with_seed(29).with_loss(loss);
        let report = run_faulty(n, 1998, 2_000, Backend::Sequential, faults);
        let worst = report.worst_max_load().unwrap();
        assert!(
            worst <= 4 * t,
            "loss={loss}: worst max load {worst} exceeded 4T = {}",
            4 * t
        );
        worst_by_rate.push(worst);
    }
    // The reliable end of the sweep meets the paper's own bound.
    assert!(worst_by_rate[0] <= 2 * t);
}

#[test]
fn rounds_to_partner_stay_inverse_square_shaped() {
    // A query succeeds only if both the query and its accept survive,
    // i.e. with probability (1-p)^2 per attempt — so the expected
    // number of game rounds a request needs scales like 1/(1-p)^2.
    // Calibrate the constant from the loss-free game and check the
    // lossy games stay inside it.
    let n = 4096;
    let params = CollisionParams::lemma1();
    let requesters: Vec<usize> = (0..32).collect();
    let seeds = 0..30u64;
    let mean_rounds = |loss: f64| -> f64 {
        let mut total = 0u64;
        let mut games = 0u64;
        for seed in seeds.clone() {
            let mut rng = SimRng::new(1000 + seed);
            let outcome = if loss == 0.0 {
                play_game(n, &requesters, &params, &mut rng)
            } else {
                let model = Bernoulli::new(500 + seed, loss);
                play_game_faulty(
                    n,
                    &requesters,
                    &params,
                    &mut rng,
                    GameFaults::new(&model, seed),
                )
            };
            total += u64::from(outcome.rounds_used);
            games += 1;
        }
        total as f64 / games as f64
    };
    let base = mean_rounds(0.0);
    assert!(base >= 1.0);
    // Stay below the saturation point: near 30% loss enough requests
    // lose 4 of their 5 query slots to burned capacity that games run
    // to the round cap, and `rounds_used` stops measuring time-to-
    // partner. The shape claim is about the pre-saturation regime.
    for loss in [0.05, 0.1, 0.2] {
        let mean = mean_rounds(loss);
        // The constant absorbs capacity burning: with c = 1 a lost
        // accept permanently consumes its target for the game, so the
        // overhead is a bit above the pure (1-p)^-2 retry cost.
        let survival = (1.0 - loss) * (1.0 - loss);
        let bound = base * 2.5 / survival;
        assert!(
            mean <= bound,
            "loss={loss}: mean rounds {mean:.2} above O(1/(1-p)^2) bound {bound:.2}"
        );
    }
}

#[test]
fn lemma8_per_phase_message_bound_holds_with_and_without_faults() {
    // Lemma 8 charges each phase a·R messages per request plus O(1)
    // bookkeeping: every request sends at most `a` queries per round
    // for at most R rounds, sees at most that many accepts back, and
    // spends ≤ 3 id/sibling messages; classification adds ≤ 2 probes
    // per heavy processor. Wasted rounds are *included* in R — a round
    // that delivers nothing still pays its queries.
    let n = 512;
    let params = CollisionParams::lemma1();
    let a = params.a as u64;
    let r = u64::from(params.rounds(n));
    let check = |faults: Option<FaultConfig>| {
        let mut runner = Runner::new(n, 13)
            .model(Single::default_paper())
            .strategy(ThresholdBalancer::new(
                BalancerConfig::paper(n).with_phase_reports(),
            ))
            .probe(PhaseProbe::new())
            .probe(MessageRateProbe::new());
        if let Some(cfg) = faults {
            runner = runner.faults(cfg);
        }
        let report = runner.run(1_500);
        let phases = match report.probe("phases") {
            Some(ProbeOutput::Phases(p)) => p.clone(),
            other => panic!("unexpected probe output: {other:?}"),
        };
        assert!(!phases.is_empty());
        for ph in &phases {
            let bound = ph.requests * (2 * a * r + 3) + 2 * ph.heavy as u64;
            assert!(
                ph.messages <= bound,
                "phase {}: {} messages above Lemma 8 bound {bound}",
                ph.phase,
                ph.messages
            );
            assert!(
                ph.wasted_rounds <= ph.rounds,
                "wasted rounds not contained in round count"
            );
        }
        // Satellite check: the message-rate probe sees the same rounds
        // the phase reports carry, wasted ones included.
        match report.probe("message_rate") {
            Some(ProbeOutput::MessageRate {
                game_rounds,
                wasted_rounds,
                ..
            }) => {
                assert_eq!(*game_rounds, phases.iter().map(|p| p.rounds).sum::<u64>());
                assert_eq!(
                    *wasted_rounds,
                    phases.iter().map(|p| p.wasted_rounds).sum::<u64>()
                );
                assert!(*game_rounds > 0);
            }
            other => panic!("unexpected probe output: {other:?}"),
        }
    };
    check(None);
    check(Some(FaultConfig::reliable().with_seed(2).with_loss(0.05)));
}

#[test]
fn crash_probe_sees_outages_and_recoveries() {
    let n = 256;
    let faults = FaultConfig::reliable().with_seed(6).with_crashes(0.10, 32);
    let report = run_faulty(n, 77, 1_500, Backend::Sequential, faults);
    match report.probe("faults") {
        Some(ProbeOutput::Faults {
            crash_events,
            recover_events,
            crashed_steps,
            mean_downtime,
            ..
        }) => {
            assert!(*crash_events > 0, "no crashes at 10% window rate");
            assert!(*recover_events > 0, "nothing ever recovered");
            assert!(*crashed_steps > 0);
            assert!(*mean_downtime > 0.0);
        }
        other => panic!("unexpected probe output: {other:?}"),
    }
    // Crashed processors froze but did not sink the run.
    assert!(report.completions.count > 0);
}
