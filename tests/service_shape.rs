//! Statistical shape tests for the open-loop traffic front-end.
//!
//! These are seeded (hence deterministic) but statistical in spirit:
//! they check that the traffic model produces the *distributions* it
//! claims, not just that runs are reproducible.
//!
//! * the empirical Poisson arrival rate lands inside a confidence band
//!   around ρ;
//! * Little's law `L = λW` holds: the time-averaged number of tasks in
//!   the system equals the arrival rate times the mean sojourn (the
//!   identity couples three independently-measured quantities — the
//!   load series, the completion counter, and the sojourn histogram);
//! * the p999 sojourn is monotone in ρ — heavier offered load can only
//!   push the tail out.

use pcrlb::prelude::*;

/// Open-loop Poisson run with no balancing: each processor is an
/// independent discrete-time M/D/1 queue, the cleanest setting for
/// distribution checks. Samples the total in-system load every step.
fn open_loop(n: usize, seed: u64, steps: u64, rho: f64) -> RunReport {
    Runner::new(n, seed)
        .model(TrafficModel::new(TrafficSpec::poisson(rho), n).expect("valid spec"))
        .strategy(Unbalanced)
        .probe(SojournProbe::new())
        .probe(SeriesProbe::named("load", |w| w.total_load() as f64))
        .run(steps)
}

fn load_series(report: &RunReport) -> &[f64] {
    match report.probe("load") {
        Some(ProbeOutput::Series(series)) => series,
        other => panic!("unexpected probe output: {other:?}"),
    }
}

#[test]
fn poisson_empirical_rate_within_confidence_band() {
    let (n, steps, rho) = (4096, 500, 0.7);
    let report = open_loop(n, 2026, steps as u64, rho);
    // With unbounded admission every arrival is admitted, so arrivals =
    // completions + still-in-system load.
    let arrivals = report.completions.count + report.total_load;
    let samples = (n * steps) as f64;
    let mean = arrivals as f64 / samples;
    // Poisson(ρ) per processor-step: the sample mean is within ±6σ of ρ
    // for any healthy generator (σ = sqrt(ρ / samples)).
    let band = 6.0 * (rho / samples).sqrt();
    assert!(
        (mean - rho).abs() < band,
        "empirical rate {mean:.5} outside {rho} ± {band:.5}"
    );
}

#[test]
fn littles_law_holds_at_rho_07() {
    let (n, steps) = (4096usize, 2_000u64);
    let report = open_loop(n, 7, steps, 0.7);
    let series = load_series(&report);
    assert_eq!(series.len(), steps as usize);
    let l = series.iter().sum::<f64>() / series.len() as f64;
    // λ measured, not assumed: admitted arrivals per step.
    let lambda = (report.completions.count + report.total_load) as f64 / steps as f64;
    let w = report.completions.sojourn_mean();
    let relative = (l - lambda * w).abs() / (lambda * w);
    assert!(
        relative < 0.10,
        "Little's law violated: L={l:.1}, lambda*W={:.1} (err {relative:.3})",
        lambda * w
    );
}

#[test]
fn p999_sojourn_is_monotone_in_rho() {
    let (n, steps) = (4096, 2_000);
    let mut last = None;
    for rho in [0.5, 0.7, 0.9] {
        let report = open_loop(n, 11, steps, rho);
        let p999 = report.completions.latency.p999();
        if let Some((prev_rho, prev)) = last {
            assert!(
                p999 >= prev,
                "p999 fell from {prev} (rho={prev_rho}) to {p999} (rho={rho})"
            );
        }
        last = Some((rho, p999));
    }
    // The ends must differ strictly: the tail at rho=0.9 cannot match
    // the tail at rho=0.5.
    let light = open_loop(n, 11, steps, 0.5).completions.latency.p999();
    let heavy = open_loop(n, 11, steps, 0.9).completions.latency.p999();
    assert!(heavy > light, "p999 flat across rho: {light} vs {heavy}");
}

/// Deferred arrivals queue at the front door and are admitted later,
/// but their sojourn clock starts at the original *offer* step — the
/// pre-admission backlog wait is part of the latency a caller sees.
/// Under sustained overload (ρ = 1.2) that wait grows without bound, so
/// the defer tail must sit strictly above the shed tail, where excess
/// work is dropped instead of parked. Before the fix both policies
/// reported near-identical tails because deferred tasks were born at
/// their admission step, silently erasing the queueing delay.
#[test]
fn deferred_tail_includes_backlog_wait_at_overload() {
    let (n, seed, steps, rho, cap) = (2048usize, 1998u64, 600u64, 1.2, 8u32);
    let run = |admission: Admission| {
        let mut spec = TrafficSpec::poisson(rho);
        spec.admission = admission;
        Runner::new(n, seed)
            .model(TrafficModel::new(spec, n).expect("valid spec"))
            .strategy(Unbalanced)
            .probe(SojournProbe::new())
            .run(steps)
    };
    let deferred = run(Admission::Defer { cap });
    let shed = run(Admission::Shed { cap });
    assert!(
        deferred.total_deferred > 0,
        "rho=1.2 behind cap {cap} must defer"
    );
    assert!(shed.total_shed > 0, "rho=1.2 behind cap {cap} must shed");
    let (dp, sp) = (
        deferred.completions.latency.p999(),
        shed.completions.latency.p999(),
    );
    assert!(
        dp > sp,
        "defer p999 ({dp}) must exceed shed p999 ({sp}): parked work \
         waits, dropped work never reports a sojourn"
    );
    // The defer tail reflects genuine queueing delay: at ρ = 1.2 the
    // backlog grows roughly (ρ-1)·t arrival-steps deep per processor,
    // so late completions must have waited far longer than anything an
    // in-system queue of depth cap could explain on its own.
    assert!(
        dp >= u64::from(cap) * 4,
        "defer p999 ({dp}) too small to include backlog wait"
    );
}
