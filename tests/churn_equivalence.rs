//! Elastic-membership determinism: under any churn schedule the
//! [`RunReport`] must stay bit-identical across all four backends —
//! sequential, threaded, pooled, and the loopback net runtime — with
//! and without message loss, and every task evacuated off a departing
//! processor must land somewhere (conservation, nothing lost or
//! duplicated).

use pcrlb::prelude::*;

/// The churn schedules the sweep exercises: a 2× shrink step, a grow
/// ramp back, a transient valley, a periodic batch square wave, and a
/// composition of all four clause kinds.
const SCHEDULES: [&str; 5] = [
    "step:40,96",
    "step:30,96;ramp:96,192,100,80",
    "valley:60,40,0.5",
    "batch:50,48",
    "step:25,120;ramp:120,160,90,60;valley:160,30,0.75;batch:45,24",
];

fn run_one(
    n: usize,
    seed: u64,
    steps: u64,
    schedule: &str,
    backend: Backend,
    faults: Option<FaultConfig>,
) -> (RunReport, World) {
    let mut runner = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(ThresholdBalancer::paper(n))
        .backend(backend)
        .churn(schedule.parse().expect("schedule parses"))
        .probe(MaxLoadProbe::new())
        .probe(MessageRateProbe::new())
        .probe(MembershipProbe::new());
    if let Some(f) = faults {
        runner = runner.faults(f);
    }
    let (report, world, _strategy) = runner.run_detailed(steps);
    (report, world)
}

/// Blanks the net-only frame counters so a net report can be compared
/// field-for-field against a shared-memory run.
fn strip_frames(report: &mut RunReport) {
    for (_, out) in report.probes.iter_mut() {
        if let ProbeOutput::MessageRate { frames, .. } = out {
            *frames = None;
        }
    }
}

fn membership_of(report: &RunReport) -> (u64, u64, usize, usize) {
    match report.probe("membership") {
        Some(&ProbeOutput::Membership {
            epochs,
            evacuated_tasks,
            min_active,
            max_active,
            ..
        }) => (epochs, evacuated_tasks, min_active, max_active),
        other => panic!("membership probe missing: {other:?}"),
    }
}

fn assert_all_backends_agree(n: usize, seed: u64, steps: u64, faults: Option<FaultConfig>) {
    for schedule in SCHEDULES {
        let (seq, _) = run_one(n, seed, steps, schedule, Backend::Sequential, faults);
        let (epochs, _, min_active, max_active) = membership_of(&seq);
        assert!(epochs > 0, "schedule '{schedule}' never transitioned");
        assert!(
            min_active < max_active,
            "schedule '{schedule}' never changed the live prefix"
        );
        let backends = [
            ("threaded", Backend::Threaded(4)),
            ("pooled", Backend::Pooled(4)),
            (
                "net:2",
                Backend::Net {
                    nodes: 2,
                    tcp: false,
                    relaxed: false,
                },
            ),
            (
                "net:4",
                Backend::Net {
                    nodes: 4,
                    tcp: false,
                    relaxed: false,
                },
            ),
        ];
        for (label, backend) in backends {
            let (mut got, _) = run_one(n, seed, steps, schedule, backend, faults);
            got.backend = seq.backend;
            strip_frames(&mut got);
            assert_eq!(
                seq, got,
                "n={n} seed={seed} schedule='{schedule}' backend={label}"
            );
        }
    }
}

#[test]
fn churn_reports_are_bit_identical_across_backends() {
    for (n, seed) in [(192usize, 7u64), (256, 41), (224, 0xC0FFEE)] {
        assert_all_backends_agree(n, seed, 220, None);
    }
}

#[test]
fn churn_reports_are_bit_identical_under_message_loss() {
    let faults = FaultConfig::reliable().with_seed(29).with_loss(0.05);
    for (n, seed) in [(192usize, 7u64), (256, 41)] {
        assert_all_backends_agree(n, seed, 220, Some(faults));
    }
}

#[test]
fn evacuation_conserves_every_task() {
    // Conservation through arbitrary churn: at every instant the tasks
    // generated minus the tasks completed must equal the tasks still
    // queued on the *live* processors — departures evacuate, they never
    // drop or duplicate work. The world's final queue census is the
    // witness.
    for schedule in SCHEDULES {
        let n = 192;
        let (report, world) = run_one(n, 13, 220, schedule, Backend::Sequential, None);
        let (_, evacuated, _, _) = membership_of(&report);
        assert!(evacuated > 0, "schedule '{schedule}' evacuated nothing");
        let generated: u64 = (0..n).map(|p| world.proc_stats(p).generated).sum();
        let consumed: u64 = (0..n).map(|p| world.proc_stats(p).consumed).sum();
        let queued: u64 = world.load_slice().iter().map(|&l| u64::from(l)).sum();
        assert_eq!(
            generated,
            consumed + queued,
            "schedule '{schedule}': tasks lost or duplicated"
        );
        assert_eq!(consumed, report.completions.count);
        // Every queued task sits on a live processor: departed slots
        // are swept clean by the coordinator each step.
        let active = world.active_n();
        let stranded: u32 = world.load_slice()[active..].iter().sum();
        assert_eq!(stranded, 0, "schedule '{schedule}': tasks on dead procs");
    }
}
