//! Cross-crate determinism guarantees: seeds fully determine runs, the
//! threaded engine reproduces the sequential engine bit-for-bit, and
//! the threaded collision game matches the simulated one.

use pcrlb::collision::{play_game, play_game_threaded, CollisionParams};
use pcrlb::prelude::*;

#[test]
fn same_seed_reproduces_full_balanced_run() {
    let n = 512;
    let run = || {
        let mut e = Engine::new(
            n,
            0xDE7E_12,
            Single::default_paper(),
            ThresholdBalancer::paper(n),
        );
        e.run(1500);
        (
            e.world().loads(),
            e.world().messages(),
            e.world().completions().count,
            e.strategy().stats().matched_total,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn different_seeds_differ() {
    let n = 512;
    let run = |seed: u64| {
        let mut e = Engine::new(n, seed, Single::default_paper(), Unbalanced);
        e.run(500);
        e.world().loads()
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn parallel_engine_matches_sequential_with_balancer() {
    // The balancer runs on the coordinator thread in both engines; the
    // per-processor sub-steps run concurrently in the parallel one.
    let n = 300;
    let steps = 400;
    for threads in [2usize, 5] {
        let mut seq = Engine::new(n, 42, Single::default_paper(), ThresholdBalancer::paper(n));
        let mut par = ParallelEngine::new(
            n,
            42,
            Single::default_paper(),
            ThresholdBalancer::paper(n),
            threads,
        );
        seq.run(steps);
        par.run(steps);
        assert_eq!(
            seq.world().loads(),
            par.world().loads(),
            "threads={threads}"
        );
        assert_eq!(seq.world().messages(), par.world().messages());
        assert_eq!(
            seq.world().completions().count,
            par.world().completions().count
        );
        assert_eq!(
            seq.world().completions().hist,
            par.world().completions().hist
        );
    }
}

#[test]
fn fully_parallel_stack_matches_sequential() {
    // Threaded engine + threaded collision games + streaming transfers:
    // the maximal parallel configuration still reproduces the plain
    // sequential engine bit-for-bit.
    use pcrlb::core::BalancerConfig;
    let n = 300;
    let steps = 400;
    let make_cfg = |shards: usize| {
        BalancerConfig::paper(n)
            .with_game_shards(shards)
            .with_streaming_transfers()
    };
    let mut seq = Engine::new(
        n,
        9,
        Single::default_paper(),
        ThresholdBalancer::new(make_cfg(1)),
    );
    seq.run(steps);
    for threads in [2usize, 4] {
        let mut par = ParallelEngine::new(
            n,
            9,
            Single::default_paper(),
            ThresholdBalancer::new(make_cfg(threads)),
            threads,
        );
        par.run(steps);
        assert_eq!(seq.world().loads(), par.world().loads(), "threads={threads}");
        assert_eq!(seq.world().messages(), par.world().messages());
    }
}

#[test]
fn threaded_collision_game_is_deterministic_across_shard_counts() {
    let n = 2048;
    let params = CollisionParams::lemma1();
    let requesters: Vec<ProcId> = (0..150).collect();
    let mut base_rng = SimRng::new(99);
    let baseline = play_game(n, &requesters, &params, &mut base_rng);
    for shards in [1usize, 2, 3, 8] {
        let mut rng = SimRng::new(99);
        let out = play_game_threaded(n, &requesters, &params, &mut rng, shards);
        assert_eq!(out.accepted, baseline.accepted, "shards={shards}");
        assert_eq!(out.queries_sent, baseline.queries_sent);
        assert_eq!(out.rounds_used, baseline.rounds_used);
    }
}
