//! Cross-crate determinism guarantees: seeds fully determine runs, the
//! threaded and pooled backends reproduce the sequential backend
//! bit-for-bit (for every load model, with and without the
//! work-conserving wrapper), and the threaded collision game matches
//! the simulated one.

use pcrlb::collision::{play_game, play_game_threaded, CollisionParams};
use pcrlb::core::{Burst, Geometric, Multi, WorkConserving};
use pcrlb::prelude::*;

#[test]
fn same_seed_reproduces_full_balanced_run() {
    let n = 512;
    let run = || {
        let mut e = Engine::new(
            n,
            0x00DE_7E12,
            Single::default_paper(),
            ThresholdBalancer::paper(n),
        );
        e.run(1500);
        (
            e.world().loads(),
            e.world().messages(),
            e.world().completions().count,
            e.strategy().stats().matched_total,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn different_seeds_differ() {
    let n = 512;
    let run = |seed: u64| {
        let mut e = Engine::new(n, seed, Single::default_paper(), Unbalanced);
        e.run(500);
        e.world().loads()
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn threaded_backend_matches_sequential_with_balancer() {
    // The balancer runs on the coordinator thread under both backends;
    // the per-processor sub-steps run concurrently in the threaded one.
    let n = 300;
    let steps = 400;
    for threads in [2usize, 5] {
        let mut seq = Engine::new(n, 42, Single::default_paper(), ThresholdBalancer::paper(n));
        let mut par = Engine::threaded(
            n,
            42,
            Single::default_paper(),
            ThresholdBalancer::paper(n),
            threads,
        );
        seq.run(steps);
        par.run(steps);
        assert_eq!(
            seq.world().loads(),
            par.world().loads(),
            "threads={threads}"
        );
        assert_eq!(seq.world().messages(), par.world().messages());
        assert_eq!(
            seq.world().completions().count,
            par.world().completions().count
        );
        assert_eq!(
            seq.world().completions().hist,
            par.world().completions().hist
        );
    }
}

/// Runs the same configuration through the [`Runner`] on both backends
/// and asserts the *entire* reports (final loads, weighted loads,
/// completion histogram, message totals, probe outputs) are
/// bit-identical — the strongest form of the determinism guarantee, for
/// every load model in the repertoire.
fn assert_backends_agree<M>(make_model: impl Fn() -> M, steps: u64)
where
    M: LoadModel + Sync + 'static,
{
    let n = 300;
    let run = |backend: Backend| {
        Runner::new(n, 7)
            .model(make_model())
            .strategy(ThresholdBalancer::paper(n))
            .backend(backend)
            .probe(MaxLoadProbe::after_warmup(steps / 2))
            .probe(SojournTailProbe::new())
            .run(steps)
    };
    let seq = run(Backend::Sequential);
    for threads in [2usize, 4] {
        let mut thr = run(Backend::Threaded(threads));
        assert_eq!(thr.backend, "threaded");
        thr.backend = seq.backend; // the only field allowed to differ
        assert_eq!(seq, thr, "threads={threads}");

        let mut pooled = run(Backend::Pooled(threads));
        assert_eq!(pooled.backend, "pooled");
        pooled.backend = seq.backend;
        assert_eq!(seq, pooled, "pool threads={threads}");
    }
}

#[test]
fn runner_reports_identical_across_backends_single() {
    assert_backends_agree(Single::default_paper, 400);
}

#[test]
fn runner_reports_identical_across_backends_geometric() {
    assert_backends_agree(|| Geometric::new(4).unwrap(), 400);
}

#[test]
fn runner_reports_identical_across_backends_multi() {
    assert_backends_agree(|| Multi::new(vec![0.2, 0.1, 0.05]).unwrap(), 400);
}

#[test]
fn runner_reports_identical_across_backends_adversarial() {
    assert_backends_agree(|| Burst::new(16, 20, 0.3), 400);
}

#[test]
fn runner_reports_identical_across_backends_work_conserving() {
    let n = 300;
    let run = |backend: Backend| {
        Runner::new(n, 11)
            .model(Single::default_paper())
            .strategy(WorkConserving::new(ThresholdBalancer::paper(n)))
            .backend(backend)
            .probe(MaxLoadProbe::new())
            .run(400)
    };
    let seq = run(Backend::Sequential);
    let mut thr = run(Backend::Threaded(3));
    thr.backend = seq.backend;
    assert_eq!(seq, thr);
    let mut pooled = run(Backend::Pooled(3));
    pooled.backend = seq.backend;
    assert_eq!(seq, pooled);
}

#[test]
fn fully_parallel_stack_matches_sequential() {
    // Threaded backend + threaded collision games + streaming transfers:
    // the maximal parallel configuration still reproduces the plain
    // sequential engine bit-for-bit.
    use pcrlb::core::BalancerConfig;
    let n = 300;
    let steps = 400;
    let make_cfg = |shards: usize| {
        BalancerConfig::paper(n)
            .with_game_shards(shards)
            .with_streaming_transfers()
    };
    let mut seq = Engine::new(
        n,
        9,
        Single::default_paper(),
        ThresholdBalancer::new(make_cfg(1)),
    );
    seq.run(steps);
    for threads in [2usize, 4] {
        let mut par = Engine::threaded(
            n,
            9,
            Single::default_paper(),
            ThresholdBalancer::new(make_cfg(threads)),
            threads,
        );
        par.run(steps);
        assert_eq!(
            seq.world().loads(),
            par.world().loads(),
            "threads={threads}"
        );
        assert_eq!(seq.world().messages(), par.world().messages());

        // Same stack on the persistent pool backend (sharded games run
        // on the balancer's own lazily created pool).
        let mut pooled = Engine::pooled(
            n,
            9,
            Single::default_paper(),
            ThresholdBalancer::new(make_cfg(threads)),
            threads,
        );
        pooled.run(steps);
        assert_eq!(
            seq.world().loads(),
            pooled.world().loads(),
            "pool threads={threads}"
        );
        assert_eq!(seq.world().messages(), pooled.world().messages());
    }
}

#[test]
fn threaded_collision_game_is_deterministic_across_shard_counts() {
    let n = 2048;
    let params = CollisionParams::lemma1();
    let requesters: Vec<ProcId> = (0..150).collect();
    let mut base_rng = SimRng::new(99);
    let baseline = play_game(n, &requesters, &params, &mut base_rng);
    for shards in [1usize, 2, 3, 8] {
        let mut rng = SimRng::new(99);
        let out = play_game_threaded(n, &requesters, &params, &mut rng, shards);
        assert_eq!(out.accepted, baseline.accepted, "shards={shards}");
        assert_eq!(out.queries_sent, baseline.queries_sent);
        assert_eq!(out.rounds_used, baseline.rounds_used);
    }
}

#[test]
fn phase_probe_sees_what_the_balancer_records() {
    // The observer pipeline must deliver exactly the reports the
    // balancer's own `record_phases` bookkeeping captures.
    use pcrlb::core::PhaseReport;
    let n = 256;
    let cfg = pcrlb::core::BalancerConfig::paper(n).with_phase_reports();
    let (report, _world, balancer) = Runner::new(n, 13)
        .model(Single::default_paper())
        .strategy(ThresholdBalancer::new(cfg))
        .probe(PhaseProbe::new())
        .run_detailed(600);
    let probed: &[PhaseReport] = match report.probe("phases") {
        Some(ProbeOutput::Phases(p)) => p,
        other => panic!("unexpected probe output: {other:?}"),
    };
    assert!(!probed.is_empty(), "no phases observed");
    assert_eq!(probed, balancer.phase_reports());
}
