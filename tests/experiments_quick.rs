//! Every registered experiment runs end-to-end in quick mode and
//! produces a non-empty table — the harness contract behind
//! `EXPERIMENTS.md`.

use pcrlb_bench::experiments::registry;
use pcrlb_bench::ExpOptions;

#[test]
fn every_experiment_runs_in_quick_mode() {
    let opts = ExpOptions::quick();
    for exp in registry() {
        let table = (exp.run)(&opts);
        assert!(
            !table.is_empty(),
            "experiment {} produced an empty table",
            exp.id
        );
        // The rendered forms must be well-formed (headers + separator +
        // at least one row).
        assert!(table.to_text().lines().count() >= 3, "{}", exp.id);
        assert!(table.to_markdown().lines().count() >= 3, "{}", exp.id);
    }
}

#[test]
fn experiment_ids_are_unique_and_findable() {
    let reg = registry();
    let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
    let before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), before, "duplicate experiment ids");
    for id in ids {
        assert!(pcrlb_bench::experiments::find(id).is_some());
    }
    assert!(pcrlb_bench::experiments::find("nope").is_none());
}
