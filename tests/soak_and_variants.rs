//! Soak tests: long mixed runs across models, strategies, and variants,
//! asserting the global invariants that must hold everywhere —
//! stability, conservation under silent models, bounded max load, and
//! sane statistics. Also exercises every §5 variant and the shmem crate
//! through the facade.

use pcrlb::core::adversary::{Burst, Targeted, TreeSpawn};
use pcrlb::core::{BalancerConfig, WorkConserving};
use pcrlb::prelude::*;
use pcrlb::shmem::{DmmConfig, DmmMachine, MemOp};

/// Every generation model under the paper balancer stays stable over a
/// long run and keeps completion accounting consistent.
#[test]
fn soak_all_models_stay_stable() {
    let n = 512;
    let steps = 6_000;
    let t = BalancerConfig::paper(n).theorem1_bound();

    fn drive<M: LoadModel>(n: usize, steps: u64, model: M) -> (u64, u64, u64) {
        let mut e = Engine::new(n, 0x50AC ^ steps, model, ThresholdBalancer::paper(n));
        e.run(steps);
        let w = e.world();
        let generated: u64 = w.procs().map(|p| p.stats.generated).sum();
        (w.total_load(), w.completions().count, generated)
    }

    let cases: Vec<(&str, (u64, u64, u64))> = vec![
        ("single", drive(n, steps, Single::default_paper())),
        ("geometric", drive(n, steps, Geometric::new(3).unwrap())),
        (
            "multi",
            drive(n, steps, Multi::new(vec![0.3, 0.1, 0.05]).unwrap()),
        ),
        ("burst", drive(n, steps, Burst::new(16, 8, 0.05))),
        ("targeted", drive(n, steps, Targeted::new(16, 4, 16))),
        ("treespawn", drive(n, steps, TreeSpawn::new(2, 0.3, 0.2))),
    ];
    for (name, (load, completed, generated)) in cases {
        // Conservation: everything generated is either done or queued.
        assert_eq!(
            completed + load,
            generated,
            "{name}: {completed} completed + {load} queued != {generated} generated"
        );
        // Stability: far below divergence.
        assert!(
            load < (n as u64) * (t as u64),
            "{name}: total load {load} looks divergent"
        );
    }
}

/// The §5 variants compose: streaming transfers + work conservation +
/// threaded collision games together still bound the max load and
/// conserve tasks.
#[test]
fn variants_compose() {
    let n = 512;
    let cfg = BalancerConfig::paper(n)
        .with_streaming_transfers()
        .with_game_shards(2);
    let bound = 2 * cfg.theorem1_bound();
    let (report, world, strategy) = Runner::new(n, 0xC0DE)
        .model(Single::default_paper())
        .strategy(WorkConserving::new(ThresholdBalancer::new(cfg)))
        .probe(MaxLoadProbe::new())
        .run_detailed(3_000);
    let worst = report.worst_max_load().unwrap_or(0);
    assert!(worst <= bound, "composed variants: worst {worst} > {bound}");
    let generated: u64 = world.procs().map(|p| p.stats.generated).sum();
    assert_eq!(report.completions.count + report.total_load, generated);
    assert!(strategy.bonus_consumed() > 0);
}

/// The shmem machine is usable through the facade and stays consistent
/// while a balancer-style workload hammers it.
#[test]
fn shmem_facade_soak() {
    let mut memory = DmmMachine::new(DmmConfig::mss95(128), 7);
    let mut rng = SimRng::new(3);
    // Alternate write and read-back waves over a working set.
    for wave in 0..30u64 {
        let writes: Vec<MemOp> = (0..32)
            .map(|i| MemOp::Write {
                cell: i,
                value: wave * 100 + i,
            })
            .collect();
        assert!(memory.step(&writes).all_completed());
        let reads: Vec<MemOp> = (0..32).map(|i| MemOp::Read { cell: i }).collect();
        let out = memory.step(&reads);
        assert!(out.all_completed());
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(*r, Some(wave * 100 + i as u64), "wave {wave} cell {i}");
        }
        // Mix in some random-cell churn.
        let churn: Vec<MemOp> = (0..16)
            .map(|_| MemOp::Read {
                cell: rng.below(1 << 16) as u64 + 1000,
            })
            .collect();
        assert!(memory.step(&churn).all_completed());
    }
    assert!(memory.mean_messages_per_op() < 12.0);
}

/// Chaos strategy: makes arbitrary (but legal) transfers every step.
/// Whatever a strategy does with the public API, the substrate's
/// invariants must survive — conservation, exact completion accounting,
/// coherent weighted loads.
struct Chaos;

impl Strategy for Chaos {
    fn on_step(&mut self, world: &mut World) {
        let n = world.n();
        for _ in 0..8 {
            let a = world.rng_global().below(n);
            let mut b = world.rng_global().below(n);
            if b == a {
                b = (b + 1) % n;
            }
            let k = world.rng_global().below(5);
            match world.rng_global().below(3) {
                0 => {
                    world.transfer(a, b, k);
                }
                1 => {
                    world.transfer_weight(a, b, k as u64);
                }
                _ => {
                    let tasks = world.extract_back(a, k);
                    world.deposit(b, tasks);
                }
            }
        }
    }
}

#[test]
fn chaos_strategy_cannot_break_substrate_invariants() {
    let n = 64;
    let mut e = Engine::new(n, 0xBAD, Single::default_paper(), Chaos);
    for _ in 0..1_000 {
        e.step();
        let w = e.world();
        let generated: u64 = w.procs().map(|p| p.stats.generated).sum();
        assert_eq!(w.completions().count + w.total_load(), generated);
        // Weighted and unweighted views agree for unit tasks.
        assert_eq!(w.total_weighted_load(), w.total_load());
        // Per-processor stats never go inconsistent.
        for p in w.procs() {
            assert!(p.stats.tasks_sent >= p.stats.transfers_out);
            assert!(p.stats.tasks_received >= p.stats.transfers_in);
        }
    }
}

/// Seeds shown in EXPERIMENTS.md must reproduce: spot-check a pinned
/// fingerprint so accidental determinism breaks get caught at CI time.
/// (If an intentional algorithm change lands, update the pinned values
/// together with EXPERIMENTS.md.)
#[test]
fn pinned_fingerprint_regression() {
    let n = 256;
    let mut e = Engine::new(
        n,
        1998,
        Single::default_paper(),
        ThresholdBalancer::paper(n),
    );
    e.run(1_000);
    let w = e.world();
    let fp = (
        w.total_load(),
        w.max_load(),
        w.completions().count,
        w.messages().control_total(),
    );
    // Pinned from the first green run of this test; see note above.
    assert_eq!(fp, (428, 6, 101_851, 6_947));
}
