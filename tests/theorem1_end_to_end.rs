//! End-to-end reproduction of the paper's headline claims through the
//! public facade API — the checks a reviewer would run first.

use pcrlb::core::BalancerConfig;
use pcrlb::prelude::*;

/// Theorem 1: under `Single`, max load stays `O((log log n)^2)` w.h.p.
/// while the unbalanced system drifts to `Θ(log n)` territory.
#[test]
fn theorem1_shape_holds_across_sizes() {
    for n in [256usize, 1024, 4096] {
        let cfg = BalancerConfig::paper(n);
        let t = cfg.theorem1_bound();
        let steps = 3000;
        let worst = Runner::new(n, 0xA11CE ^ n as u64)
            .model(Single::default_paper())
            .strategy(ThresholdBalancer::new(cfg))
            .probe(MaxLoadProbe::new())
            .run(steps)
            .worst_max_load()
            .unwrap_or(0);
        assert!(
            worst <= 2 * t,
            "n={n}: worst max load {worst} exceeded 2T = {}",
            2 * t
        );
    }
}

/// The balanced system is never worse than the unbalanced one in total
/// load (§4.2, Lemma 3 intuition) on identical arrival streams.
#[test]
fn balanced_total_load_not_worse() {
    let n = 1024;
    let seed = 77;
    let steps = 3000;
    let mut bal = Engine::new(
        n,
        seed,
        Single::default_paper(),
        ThresholdBalancer::paper(n),
    );
    let mut unbal = Engine::new(n, seed, Single::default_paper(), Unbalanced);
    bal.run(steps);
    unbal.run(steps);
    // Small slack: transfers shift which processors idle, so totals are
    // close but not identical.
    assert!(bal.world().total_load() <= unbal.world().total_load() + (n as u64) / 8);
}

/// The communication claim: control messages per phase are a vanishing
/// fraction of what parallel balls-into-bins pays per step.
#[test]
fn communication_is_sublinear_in_processor_steps() {
    let n = 2048;
    let steps = 2000u64;
    let mut e = Engine::new(n, 3, Single::default_paper(), ThresholdBalancer::paper(n));
    e.run(steps);
    let msgs = e.world().messages().control_total();
    // Balls-into-bins: >= n messages per step = n*steps total.
    assert!(
        msgs * 20 < n as u64 * steps,
        "{msgs} control messages is not << n*steps = {}",
        n as u64 * steps
    );
}

/// Locality: the overwhelming majority of tasks execute where they were
/// generated (§1.2).
#[test]
fn tasks_mostly_run_at_their_origin() {
    let n = 1024;
    let mut e = Engine::new(n, 5, Single::default_paper(), ThresholdBalancer::paper(n));
    e.run(4000);
    let loc = e.world().completions().locality();
    assert!(loc > 0.9, "locality {loc} too low");
}

/// Corollary 1 shape: with constant-length tasks, waiting times are
/// bounded by a small multiple of `T`.
#[test]
fn waiting_time_bounded_by_t_multiple() {
    let n = 1024;
    let cfg = BalancerConfig::paper(n);
    let t = cfg.theorem1_bound() as u64;
    let model = Geometric::new(2).expect("valid");
    let mut e = Engine::new(n, 9, model, ThresholdBalancer::new(cfg));
    e.run(4000);
    let c = e.world().completions();
    assert!(c.count > 0);
    assert!(
        c.sojourn_max <= 8 * t,
        "max sojourn {} exceeds 8T = {}",
        c.sojourn_max,
        8 * t
    );
    // Expected waiting time is constant (small).
    assert!(c.sojourn_mean() < t as f64);
}

/// Scatter variant (§5): lower max load than the threshold algorithm,
/// at far higher message cost.
#[test]
fn scatter_variant_trades_messages_for_load() {
    let n = 1024;
    let seed = 11;
    let steps = 2000;
    fn observe<S: Strategy>(n: usize, seed: u64, steps: u64, strategy: S) -> (usize, u64) {
        let report = Runner::new(n, seed)
            .model(Single::default_paper())
            .strategy(strategy)
            .probe(MaxLoadProbe::new())
            .run(steps);
        (
            report.worst_max_load().unwrap_or(0),
            report.messages.control_total(),
        )
    }
    let (scatter_max, scatter_msgs) = observe(n, seed, steps, ScatterBalancer::paper(n));
    let (paper_max, paper_msgs) = observe(n, seed, steps, ThresholdBalancer::paper(n));
    assert!(scatter_max <= paper_max);
    assert!(scatter_msgs > 5 * paper_msgs.max(1));
}
