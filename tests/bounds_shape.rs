//! Statistical acceptance test for Theorem 1's *shape*: the worst max
//! load across a seeded sweep of machine sizes must scale like
//! `(log log n)^2`, not like `log n` or `n^ε`.
//!
//! The end-to-end bound test (`theorem1_end_to_end.rs`) checks the
//! absolute constant at small `n`; this test checks the *growth rate*
//! over `n ∈ {2^10, 2^12, 2^14, 2^16}`: normalising the measured worst
//! max load by `(log2 log2 n)^2` must give ratios confined to a narrow
//! band. A `log n` growth would triple the normalised ratio from 2^10
//! to 2^16 (10/11.04 → 16/16.0 doubles it even before constants); the
//! paper's bound keeps it flat.
//!
//! The sweep runs on the persistent-pool backend — this is the
//! production configuration for large-`n` experiments — and the two
//! smallest sizes are replayed sequentially to pin the pool's
//! bit-exactness inside the same sweep. Step counts shrink as `n`
//! grows to keep the test inside the tier-1 budget; the warm-up is
//! half of each run, so every measurement is taken in steady state.

use pcrlb::prelude::*;

/// (exponent, steps) — steps scale down with n to bound debug-mode
/// runtime; all runs are long enough to pass their warm-up well into
/// the stationary regime.
const SWEEP: [(u32, u64); 4] = [(10, 1000), (12, 700), (14, 400), (16, 200)];

fn worst_max_load(n: usize, steps: u64, backend: Backend) -> usize {
    let report = Runner::new(n, 0xB0D5 ^ n as u64)
        .model(Single::default_paper())
        .strategy(ThresholdBalancer::paper(n))
        .backend(backend)
        .probe(MaxLoadProbe::after_warmup(steps / 2))
        .run(steps);
    report
        .worst_max_load()
        .expect("max-load probe always reports")
}

#[test]
fn max_load_scales_like_loglog_squared() {
    let mut ratios = Vec::new();
    for (exp, steps) in SWEEP {
        let n = 1usize << exp;
        let worst = worst_max_load(n, steps, Backend::Pooled(4));

        // Absolute Theorem 1 check: within a small constant multiple of
        // the paper's T = (log log n)^2 bound.
        let bound = BalancerConfig::paper(n).theorem1_bound();
        assert!(
            worst <= 2 * bound,
            "n=2^{exp}: worst max load {worst} exceeds 2·T = {}",
            2 * bound
        );
        assert!(worst > 0, "n=2^{exp}: no load ever observed");

        let loglog = (n as f64).log2().log2();
        ratios.push(worst as f64 / (loglog * loglog));
    }

    // Shape check: the normalised ratios must stay in a tight band. If
    // max load grew like log n, the 2^16 ratio would be ~3.6x the 2^10
    // ratio ((16/3.32) / (10/... )); like sqrt(n), ~70x. The measured
    // band for the paper's balancer is ~1.5x; 2.5x leaves seed slack
    // without admitting any faster-growing law.
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min <= 2.5,
        "normalised max-load ratios {ratios:?} spread {:.2}x — growth is \
         not (log log n)^2-shaped",
        max / min
    );
}

#[test]
fn shape_sweep_is_backend_independent() {
    // The pooled measurements above are bit-identical to sequential
    // ones; replay the two cheap sizes to prove it inside this sweep
    // (full cross-backend coverage lives in determinism.rs and the
    // property tests).
    for (exp, steps) in &SWEEP[..2] {
        let n = 1usize << exp;
        let pooled = worst_max_load(n, *steps, Backend::Pooled(4));
        let sequential = worst_max_load(n, *steps, Backend::Sequential);
        assert_eq!(pooled, sequential, "n=2^{exp}");
    }
}
