//! Worker-pool lifecycle soak: repeatedly building, running, and
//! dropping pool-backed runners must return the process to its
//! baseline thread count — no leaked workers, no unbounded thread
//! growth, even when a run aborts by panic.
//!
//! Thread hygiene is observed two ways: the pool's own
//! [`live_workers`] accounting, and the kernel's view via
//! `/proc/self/status` (on Linux; skipped silently elsewhere), so an
//! accounting bug cannot hide a real leak.

use pcrlb::prelude::*;
use pcrlb::sim::live_workers;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Serializes the soak tests: both assert on process-global thread
/// counts and would race if the harness interleaved them.
static SERIAL: Mutex<()> = Mutex::new(());

/// Threads of this process as the kernel counts them, or `None` when
/// `/proc` is unavailable.
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn short_pooled_run(seed: u64, threads: usize) -> RunReport {
    Runner::new(64, seed)
        .model(Single::default_paper())
        .strategy(ThresholdBalancer::paper(64))
        .backend(Backend::Pooled(threads))
        .probe(MaxLoadProbe::new())
        .run(25)
}

#[test]
fn hundred_runner_lifecycles_return_to_baseline() {
    let _serial = SERIAL.lock().unwrap();
    let worker_baseline = live_workers();
    let os_baseline = os_thread_count();

    let mut reference = None;
    for i in 0..100u64 {
        let report = short_pooled_run(42, 1 + (i as usize % 4));
        // While we are here: every lifecycle must also compute the
        // same (seed-determined) result regardless of pool width.
        let r = (report.total_load, report.completions.count);
        match &reference {
            None => reference = Some(r),
            Some(expected) => assert_eq!(&r, expected, "iteration {i}"),
        }
        assert_eq!(
            live_workers(),
            worker_baseline,
            "iteration {i} leaked workers"
        );
    }

    if let (Some(before), Some(after)) = (os_baseline, os_thread_count()) {
        assert_eq!(
            after, before,
            "process thread count grew across 100 pool lifecycles"
        );
    }
}

#[test]
fn panicking_runs_do_not_leak_workers() {
    let _serial = SERIAL.lock().unwrap();
    let worker_baseline = live_workers();
    let os_baseline = os_thread_count();

    struct Bomb;
    impl pcrlb::sim::Probe for Bomb {
        fn name(&self) -> &'static str {
            "bomb"
        }
        fn on_step(&mut self, world: &pcrlb::sim::World) {
            if world.step() >= 3 {
                panic!("boom");
            }
        }
        fn finish(self: Box<Self>) -> ProbeOutput {
            unreachable!("the bomb always detonates before finish")
        }
    }

    for i in 0..20u64 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runner::new(64, i)
                .model(Single::default_paper())
                .strategy(Unbalanced)
                .backend(Backend::Pooled(4))
                .probe(Bomb)
                .run(50)
        }));
        assert!(result.is_err(), "iteration {i}: bomb must abort the run");
        assert_eq!(
            live_workers(),
            worker_baseline,
            "iteration {i} leaked workers after panic"
        );
    }

    if let (Some(before), Some(after)) = (os_baseline, os_thread_count()) {
        assert_eq!(after, before, "panicking runs leaked OS threads");
    }
}
