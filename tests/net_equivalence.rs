//! `Backend::Net` determinism: the loopback message-passing runtime —
//! real encoded frames batched per peer, per-node mailboxes, per-peer
//! round watermarks instead of global barriers — must reproduce the
//! sequential backend's [`RunReport`] bit-for-bit, for reliable and
//! lossy fault plans alike, and its logical frame counters must agree
//! with the message ledger under the Lemma 8 charging rule (one
//! logical frame per message, charged at the sender, drops annotated
//! not re-charged; physical batch frames are tracked separately).

use pcrlb::prelude::*;
use pcrlb::sim::FrameStats;

fn run_pair(
    n: usize,
    seed: u64,
    steps: u64,
    backend: Backend,
    faults: Option<FaultConfig>,
) -> (RunReport, World) {
    let mut runner = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(ThresholdBalancer::paper(n))
        .backend(backend)
        .probe(MaxLoadProbe::new())
        .probe(MessageRateProbe::new())
        .probe(SojournTailProbe::new());
    if let Some(f) = faults {
        runner = runner.faults(f);
    }
    let (report, world, _strategy) = runner.run_detailed(steps);
    (report, world)
}

/// Blanks the net-only `frames` slot of a `MessageRate` probe output so
/// reports can be compared field-for-field against a shared-memory run
/// (frame stats are deliberately net-specific observability, not part
/// of the simulated outcome).
fn strip_frames(report: &mut RunReport) {
    for (_, out) in report.probes.iter_mut() {
        if let ProbeOutput::MessageRate { frames, .. } = out {
            *frames = None;
        }
    }
}

fn assert_net_matches_sequential(n: usize, seed: u64, steps: u64, faults: Option<FaultConfig>) {
    let (seq, _) = run_pair(n, seed, steps, Backend::Sequential, faults);
    for nodes in [1usize, 2, 4, 8] {
        let (mut net, world) = run_pair(
            n,
            seed,
            steps,
            Backend::Net {
                nodes,
                tcp: false,
                relaxed: false,
            },
            faults,
        );
        assert_eq!(net.backend, "net");
        // The only fields allowed to differ: the backend name and the
        // net-only frame counters.
        net.backend = seq.backend;
        strip_frames(&mut net);
        assert_eq!(seq, net, "n={n} seed={seed} nodes={nodes}");

        let frames = world
            .net_frames()
            .expect("net-driven world must expose frame stats");
        assert!(frames.frames_sent > 0, "no frames ever hit the wire");
        // Physical losses coincide exactly with the ledger's logical
        // drop decisions (same pure hash on both sides).
        assert_eq!(frames.frames_dropped, net.messages.dropped);
        // The Lemma 8 charging rule holds on the wire: one logical
        // frame per ledger message (control + transfers), with batch
        // frames and empty sync batches tracked separately as physical
        // packaging overhead.
        assert_eq!(
            frames.control_frames + frames.transfer_frames,
            net.messages.total(),
            "protocol frames must mirror the ledger one-for-one"
        );
        assert_eq!(frames.payload_tasks, net.messages.tasks_moved);
        if nodes > 1 {
            assert!(frames.batches_sent > 0, "no batch ever hit the wire");
            assert_eq!(frames.batches_sent, frames.batches_received);
        }
    }
}

#[test]
fn loopback_net_reproduces_sequential_reliable() {
    for (n, seed) in [(192usize, 7u64), (256, 41), (320, 0xBFF5)] {
        assert_net_matches_sequential(n, seed, 400, None);
    }
}

#[test]
fn loopback_net_reproduces_sequential_under_loss() {
    let faults = FaultConfig::reliable().with_seed(29).with_loss(0.05);
    for (n, seed) in [(192usize, 7u64), (256, 41), (320, 0xBFF5)] {
        assert_net_matches_sequential(n, seed, 400, Some(faults));
    }
}

#[test]
fn loopback_net_handles_strategies_without_control_traffic() {
    // Unbalanced sends nothing: the runtime must not deadlock waiting
    // for frames that never come (empty sync batches still advance each
    // peer's round watermark).
    let n = 128;
    let quiet = |backend| {
        Runner::new(n, 3)
            .model(Single::default_paper())
            .strategy(Unbalanced)
            .backend(backend)
            .probe(MaxLoadProbe::new())
            .probe(MessageRateProbe::new())
            .run_detailed(300)
    };
    let (seq, _, _) = quiet(Backend::Sequential);
    let (mut net, world, _) = quiet(Backend::Net {
        nodes: 3,
        tcp: false,
        relaxed: false,
    });
    net.backend = seq.backend;
    strip_frames(&mut net);
    assert_eq!(seq, net);
    let frames = world.net_frames().expect("frame stats");
    assert_eq!(frames.control_frames, 0);
    assert_eq!(frames.transfer_frames, 0);
    assert!(frames.sync_frames > 0, "empty batches still advance rounds");
    assert_eq!(
        frames.batches_sent, frames.sync_frames,
        "a silent strategy sends nothing but sync batches"
    );
}

#[test]
fn message_rate_probe_surfaces_frame_stats_only_on_net() {
    let n = 192;
    let (seq, _) = run_pair(n, 7, 300, Backend::Sequential, None);
    let (net, _) = run_pair(
        n,
        7,
        300,
        Backend::Net {
            nodes: 2,
            tcp: false,
            relaxed: false,
        },
        None,
    );
    let get = |r: &RunReport| match r.probe("message_rate") {
        Some(ProbeOutput::MessageRate { frames, .. }) => *frames,
        other => panic!("unexpected probe output: {other:?}"),
    };
    assert_eq!(get(&seq), None, "shared-memory backends carry no frames");
    let frames: FrameStats = get(&net).expect("net backend must report frames");
    assert!(frames.bytes_sent > 0);
    assert_eq!(
        frames.frames_sent,
        frames.frames_received + frames.frames_dropped
    );
}

#[test]
fn tcp_net_reproduces_sequential_smoke() {
    // Small but real: encoded frames over localhost TCP sockets, with
    // connection reuse and Hello handshakes, still bit-identical.
    let n = 96;
    let steps = 150;
    let (seq, _) = run_pair(n, 11, steps, Backend::Sequential, None);
    let (mut tcp, world) = run_pair(
        n,
        11,
        steps,
        Backend::Net {
            nodes: 2,
            tcp: true,
            relaxed: false,
        },
        None,
    );
    assert_eq!(tcp.backend, "net");
    tcp.backend = seq.backend;
    strip_frames(&mut tcp);
    assert_eq!(seq, tcp);
    let frames = world.net_frames().expect("frame stats");
    assert_eq!(
        frames.control_frames + frames.transfer_frames,
        tcp.messages.total()
    );
}
