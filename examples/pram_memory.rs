//! Where the collision protocol comes from: simulating a PRAM's shared
//! memory on a distributed memory machine (MSS'95), the application the
//! SPAA'98 paper adapted into a load-balancing partner search.
//!
//! A parallel histogram program runs on the simulated shared memory:
//! `n` processors each read their input cell, compute a bucket, and
//! read-modify-write shared counters — all through `b`-of-`a` quorum
//! accesses resolved by collision rounds.
//!
//! ```text
//! cargo run --release --example pram_memory
//! ```

use pcrlb::shmem::{DmmConfig, DmmMachine, MemOp};
use pcrlb::sim::SimRng;

fn main() {
    let n = 256; // processors = modules
    let buckets = 16u64;
    let items = 4096u64;
    let mut memory = DmmMachine::new(DmmConfig::mss95(n), 2024);
    let mut rng = SimRng::new(7);

    println!("PRAM-on-DMM shared memory (MSS'95): {n} modules, a=3 copies, b=2 quorum, c=2\n");

    // Phase 1: write the input array (cells 1000..1000+items), n cells
    // per PRAM step.
    let inputs: Vec<u64> = (0..items).map(|_| rng.below(1000) as u64).collect();
    let mut steps = 0u64;
    for chunk in inputs.chunks(n) {
        let ops: Vec<MemOp> = chunk
            .iter()
            .enumerate()
            .map(|(i, &v)| MemOp::Write {
                cell: 1000 + steps * n as u64 + i as u64,
                value: v,
            })
            .collect();
        let out = memory.step(&ops);
        assert!(out.all_completed());
        steps += 1;
    }
    println!("wrote {items} input cells in {steps} PRAM steps");

    // Phase 2: histogram. Each round, n processors read n inputs and
    // accumulate bucket counts locally, then merge into shared counters
    // (cells 0..buckets) with combined read-modify-write steps.
    let mut local = vec![0u64; buckets as usize];
    for (i, &v) in inputs.iter().enumerate() {
        // (Reads of the input cells; done in batches of n.)
        let _ = i;
        local[(v % buckets) as usize] += 1;
    }
    // Read current counters, add, write back — two PRAM steps.
    let reads: Vec<MemOp> = (0..buckets).map(|b| MemOp::Read { cell: b }).collect();
    let out = memory.step(&reads);
    assert!(out.all_completed());
    let writes: Vec<MemOp> = (0..buckets)
        .map(|b| {
            let old = out.results[b as usize].unwrap_or(0);
            MemOp::Write {
                cell: b,
                value: old + local[b as usize],
            }
        })
        .collect();
    assert!(memory.step(&writes).all_completed());

    // Phase 3: verify through fresh quorum reads.
    let verify: Vec<MemOp> = (0..buckets).map(|b| MemOp::Read { cell: b }).collect();
    let out = memory.step(&verify);
    let mut total = 0u64;
    for (b, &expected) in local.iter().enumerate().take(buckets as usize) {
        let stored = out.results[b].expect("counter readable");
        assert_eq!(stored, expected, "bucket {b} corrupted");
        total += stored;
    }
    assert_eq!(total, items);
    println!("histogram of {items} items verified across {buckets} shared counters\n");

    println!("machine statistics:");
    println!("  PRAM steps executed      = {}", memory.steps());
    println!(
        "  mean collision rounds    = {:.2} per step",
        memory.mean_rounds()
    );
    println!(
        "  mean messages            = {:.2} per operation",
        memory.mean_messages_per_op()
    );
    println!();
    println!("The same engine — redundant random locations, b-of-a quorums,");
    println!("collision-rule contention — is what the SPAA'98 balancer runs");
    println!("to pair heavy processors with light ones.");
}
