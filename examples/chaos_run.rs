//! Chaos run: the threshold balancer surviving an unreliable network
//! and crashing processors. Every protocol message is dropped with 5%
//! probability (and occasionally delayed), and each processor is down
//! for any given 64-step window with 2% probability — yet the system
//! keeps its `(log log n)^2` load regime, because the collision
//! protocol self-heals: lost queries are re-sent next round, heavy
//! processors that fail a whole phase retry with capped exponential
//! backoff, and transfers to or from a crashed endpoint freeze until
//! re-planned around live processors.
//!
//! The fault schedule is a pure function of `(seed, fault seed)`, so
//! this chaotic run is also bit-reproducible — rerun it and every
//! number below repeats exactly.
//!
//! ```text
//! cargo run --release --example chaos_run [n] [steps] [fault_seed]
//! ```

use pcrlb::core::BalancerConfig;
use pcrlb::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 12);
    let steps: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let fault_seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let seed = 1998;

    let faults = FaultConfig::reliable()
        .with_seed(fault_seed)
        .with_loss(0.05)
        .with_delays(0.05, 2)
        .with_crashes(0.02, 64);
    println!(
        "n = {n}, steps = {steps}, loss = {:.0}%, delay = {:.0}%, crash = {:.0}%/window, fault seed = {fault_seed}\n",
        faults.loss_rate * 100.0,
        faults.delay_rate * 100.0,
        faults.crash_rate * 100.0,
    );

    let run = |with_faults: bool| {
        let mut runner = Runner::new(n, seed)
            .model(Single::default_paper())
            .strategy(ThresholdBalancer::new(
                BalancerConfig::paper(n).with_retry_backoff(8),
            ))
            .probe(MaxLoadProbe::new())
            .probe(FaultProbe::new());
        if with_faults {
            runner = runner.faults(faults);
        }
        runner.run(steps)
    };

    let calm = run(false);
    let chaos = run(true);

    let t = BalancerConfig::paper(n).theorem1_bound();
    println!("                          calm      chaos");
    println!(
        "worst max load      {:>10} {:>10}   (T = (log log n)^2 = {t})",
        calm.worst_max_load().unwrap(),
        chaos.worst_max_load().unwrap()
    );
    println!(
        "tasks completed     {:>10} {:>10}",
        calm.completions.count, chaos.completions.count
    );
    println!(
        "control msgs / step {:>10.2} {:>10.2}",
        calm.messages.control_total() as f64 / steps as f64,
        chaos.messages.control_total() as f64 / steps as f64
    );

    match chaos.probe("faults") {
        Some(ProbeOutput::Faults {
            dropped_messages,
            wasted_rounds,
            retries,
            crash_events,
            recover_events,
            crashed_steps,
            mean_downtime,
        }) => {
            println!();
            println!("fault layer (chaos run only):");
            println!("  messages dropped    {dropped_messages}");
            println!("  wasted game rounds  {wasted_rounds}");
            println!("  search retries      {retries}");
            println!("  crash events        {crash_events} ({recover_events} recovered)");
            println!("  crashed proc-steps  {crashed_steps}");
            println!("  mean outage length  {mean_downtime:.1} steps");
        }
        other => panic!("unexpected probe output: {other:?}"),
    }

    let worst = chaos.worst_max_load().unwrap();
    assert!(
        worst <= 4 * t,
        "chaos run lost the load bound: {worst} > 4T = {}",
        4 * t
    );
    println!();
    println!("the chaotic run stayed within 4T: lost messages cost wasted");
    println!("rounds and retries, not the load bound.");
}
