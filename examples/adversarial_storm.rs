//! An adversarial storm: a hot-spot workload hammers a handful of
//! processors with `O(T)` tasks every window (the paper's `Adversarial`
//! generation model, §1.2), and we watch the system absorb it.
//!
//! The demo runs the storm against (a) the unbalanced system, (b) the
//! paper's balancer, and (c) the balancer with the §4.3 single-probe
//! pre-round, printing a max-load timeline. The paper's bound for this
//! regime is `O(B + (log log n)^2)`.
//!
//! ```text
//! cargo run --release --example adversarial_storm
//! ```

use pcrlb::analysis::TimeSeries;
use pcrlb::core::adversary::Targeted;
use pcrlb::core::BalancerConfig;
use pcrlb::prelude::*;

fn timeline<S: Strategy>(
    n: usize,
    seed: u64,
    steps: u64,
    sample_every: u64,
    adversary: Targeted,
    strategy: S,
) -> TimeSeries {
    let report = Runner::new(n, seed)
        .model(adversary)
        .strategy(strategy)
        .probe(SeriesProbe::named("max_load_series", |w| {
            w.max_load() as f64
        }))
        .run(steps);
    let mut series = TimeSeries::new(sample_every);
    if let Some(ProbeOutput::Series(values)) = report.probe("max_load_series") {
        for (i, v) in values.iter().enumerate() {
            series.offer(i as u64 + 1, *v);
        }
    }
    series
}

fn main() {
    let n = 1024;
    let steps = 4_000;
    let seed = 7;
    let cfg = BalancerConfig::paper(n);
    let t = cfg.theorem1_bound();

    // Four victims receive T tasks every T steps — a sustained hot spot.
    let storm = Targeted::new(t as u64, 4, t);
    println!(
        "adversarial storm: {n} processors, 4 victims x {t} tasks every {t} steps (T = {t})\n"
    );

    let sample = 50;
    let unbal = timeline(n, seed, steps, sample, storm, Unbalanced);
    let bal = timeline(
        n,
        seed,
        steps,
        sample,
        storm,
        ThresholdBalancer::new(cfg.clone()),
    );
    let pre = timeline(
        n,
        seed,
        steps,
        sample,
        storm,
        ThresholdBalancer::new(cfg.clone().with_adversarial_preround()),
    );

    let cap = unbal.max().unwrap_or(1.0);
    let width = 80;
    println!("max load over time (width {width}, full bar = {cap}):\n");
    println!(
        "  unbalanced  {}  peak {}",
        unbal.sparkline(width, cap),
        unbal.max().unwrap()
    );
    println!(
        "  threshold   {}  peak {}",
        bal.sparkline(width, cap),
        bal.max().unwrap()
    );
    println!(
        "  + preround  {}  peak {}",
        pre.sparkline(width, cap),
        pre.max().unwrap()
    );
    println!();
    println!("paper bound for the adversarial model: O(B + (log log n)^2)");
    println!("with per-window hot-spot budget B' = {t} per victim.");

    let bal_peak = bal.max().unwrap();
    let unbal_peak = unbal.max().unwrap();
    assert!(
        bal_peak < unbal_peak,
        "balancing should beat the unbalanced system"
    );
}
