//! The collision protocol up close: one game, step by step, then the
//! same game executed across real OS threads with channel-borne
//! messages — verifying both produce identical assignments.
//!
//! ```text
//! cargo run --release --example collision_demo
//! ```

use pcrlb::collision::{play_game, play_game_threaded, CollisionParams};
use pcrlb::prelude::*;

fn main() {
    let n = 4096;
    let params = CollisionParams::lemma1();
    let requests = params.max_requests(n) / 2;
    let requesters: Vec<ProcId> = (0..requests).collect();
    let seed = 1998;

    println!("(n, eps, a, b, c)-collision protocol — Lemma 1 parameters");
    println!(
        "n = {n}, a = {}, b = {}, c = {}, requests = {requests} (budget eps*n/a = {})",
        params.a,
        params.b,
        params.c,
        params.max_requests(n)
    );
    println!(
        "round bound = {} rounds, step budget = {} <= 5 log log n = {}",
        params.rounds(n),
        params.steps_per_game(n),
        5 * pcrlb::sim::loglog(n)
    );
    println!();

    // Sequential game.
    let mut rng = SimRng::new(seed);
    let seq = play_game(n, &requesters, &params, &mut rng);
    println!("sequential:  success = {}", seq.success);
    println!("             rounds used   = {}", seq.rounds_used);
    println!(
        "             queries sent  = {} ({:.2}/request)",
        seq.queries_sent,
        seq.queries_sent as f64 / requests as f64
    );
    println!("             accepts sent  = {}", seq.accepts_sent);

    // Every request got >= b accepts; no processor accepted > c queries.
    let mut per_target = std::collections::HashMap::new();
    for acc in &seq.accepted {
        assert!(acc.len() >= params.b);
        for &t in acc {
            *per_target.entry(t).or_insert(0usize) += 1;
        }
    }
    assert!(per_target.values().all(|&c| c <= params.c));
    println!(
        "             validity: every request >= {} accepts, every processor <= {} query",
        params.b, params.c
    );
    println!();

    // Threaded game over channels — same seed, identical outcome.
    for shards in [2usize, 4, 8] {
        let mut rng = SimRng::new(seed);
        let par = play_game_threaded(n, &requesters, &params, &mut rng, shards);
        assert_eq!(par.accepted, seq.accepted, "threaded game diverged");
        println!(
            "threaded ({shards} shards): identical assignment, {} queries, {} rounds",
            par.queries_sent, par.rounds_used
        );
    }
    println!();
    println!("The protocol is insensitive to message arrival order within a");
    println!("round (a processor accepts all-or-none of a round's queries),");
    println!("so thread scheduling cannot change the outcome — the property");
    println!("that lets the paper run it synchronously on a parallel machine.");
}
