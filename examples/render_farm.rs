//! A render-farm scenario: the workload the paper's introduction
//! motivates — tasks generated *locally* (artists submit frames at
//! their own workstations, in small bursts), dependent tasks that
//! benefit from staying together, and machines that must never drown
//! while their neighbours idle.
//!
//! The farm's frame submissions follow the paper's `Geometric` model
//! (bursts of 1–4 frames, each frame one step of render time). We
//! compare three operating modes on identical submission streams:
//!
//! * no balancing (every workstation renders only what it generated),
//! * the paper's threshold balancer,
//! * a central 2-choice dispatcher (arrival-time placement).
//!
//! ```text
//! cargo run --release --example render_farm
//! ```

use pcrlb::analysis::Table;
use pcrlb::baselines::DChoiceAllocation;
use pcrlb::prelude::*;

struct FarmReport {
    worst_queue: usize,
    mean_wait: f64,
    max_wait: u64,
    locality: f64,
    msgs_per_step: f64,
}

fn simulate<S: Strategy>(n: usize, steps: u64, seed: u64, strategy: S) -> FarmReport {
    // Bursty local submissions: 1 frame w.p. 1/4, 2 w.p. 1/8, up to 4.
    let submissions = Geometric::new(4).expect("k=4 is valid");
    let report = Runner::new(n, seed)
        .model(submissions)
        .strategy(strategy)
        .probe(MaxLoadProbe::new())
        .run(steps);
    FarmReport {
        worst_queue: report.worst_max_load().unwrap_or(0),
        mean_wait: report.completions.sojourn_mean(),
        max_wait: report.completions.sojourn_max,
        locality: report.completions.locality(),
        msgs_per_step: report.messages.control_total() as f64 / steps as f64,
    }
}

fn main() {
    let n = 2048; // workstations
    let steps = 8_000;
    let seed = 1998;

    println!("render farm: {n} workstations, {steps} steps, bursty Geometric(4) submissions\n");

    let mut table = Table::new(&[
        "mode",
        "worst queue",
        "mean wait",
        "max wait",
        "locality",
        "msgs/step",
    ]);
    let mut add = |mode: &str, r: FarmReport| {
        table.row(&[
            mode.to_string(),
            r.worst_queue.to_string(),
            format!("{:.2}", r.mean_wait),
            r.max_wait.to_string(),
            format!("{:.1}%", r.locality * 100.0),
            format!("{:.2}", r.msgs_per_step),
        ]);
    };

    add("no balancing", simulate(n, steps, seed, Unbalanced));
    add(
        "threshold (paper)",
        simulate(n, steps, seed, ThresholdBalancer::paper(n)),
    );
    add(
        "central dispatcher",
        simulate(n, steps, seed, DChoiceAllocation::new(2)),
    );

    println!("{}", table.to_text());
    println!("The threshold balancer keeps worst queues near the dispatcher's");
    println!("while sending orders of magnitude fewer messages and keeping");
    println!("almost every frame on the workstation that generated it —");
    println!("which matters when frames share scene data (the paper's");
    println!("\"tasks generated on the same processor belong together\").");
}
