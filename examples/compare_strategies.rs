//! The full strategy shoot-out on one arrival stream: every continuous
//! strategy in the workspace, one table — load, communication,
//! locality, waiting time. A runnable version of the trade-off the
//! paper stakes out in §1.2.
//!
//! ```text
//! cargo run --release --example compare_strategies [n] [steps]
//! ```

use pcrlb::analysis::Table;
use pcrlb::baselines::{DChoiceAllocation, LauerAverage, LulingMonien, RandomSeeking, RsuEqualize};
use pcrlb::core::BalancerConfig;
use pcrlb::prelude::*;

fn measure<S: Strategy>(n: usize, steps: u64, seed: u64, strategy: S) -> [String; 5] {
    let report = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(strategy)
        .probe(MaxLoadProbe::after_warmup(steps / 2))
        .run(steps);
    [
        report.worst_max_load().unwrap_or(0).to_string(),
        format!(
            "{:.2}",
            report.messages.control_total() as f64 / steps as f64
        ),
        format!("{:.2}", report.messages.tasks_moved as f64 / steps as f64),
        format!("{:.1}%", report.completions.locality() * 100.0),
        format!("{:.2}", report.completions.sojourn_mean()),
    ]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4096);
    let steps: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4000);
    let seed = 0xC0FFEE;
    let t = BalancerConfig::paper(n).theorem1_bound();

    println!("strategy comparison: n = {n}, steps = {steps}, Single(p=0.4, q=0.5), T = {t}\n");

    let mut table = Table::new(&[
        "strategy",
        "worst max load",
        "ctl msgs/step",
        "tasks moved/step",
        "locality",
        "mean wait",
    ]);
    let mut add = |name: &str, cells: [String; 5]| {
        let mut row = vec![name.to_string()];
        row.extend(cells);
        table.row(&row);
    };

    add("unbalanced", measure(n, steps, seed, Unbalanced));
    add(
        "threshold (paper)",
        measure(n, steps, seed, ThresholdBalancer::paper(n)),
    );
    add(
        "scatter (sec. 5)",
        measure(n, steps, seed, ScatterBalancer::paper(n)),
    );
    add(
        "1-choice alloc",
        measure(n, steps, seed, DChoiceAllocation::new(1)),
    );
    add(
        "2-choice alloc",
        measure(n, steps, seed, DChoiceAllocation::new(2)),
    );
    add(
        "rsu equalize",
        measure(n, steps, seed, RsuEqualize::classic()),
    );
    add(
        "luling-monien",
        measure(n, steps, seed, LulingMonien::new(n, 2)),
    );
    add(
        "lauer c=0.5",
        measure(n, steps, seed, LauerAverage::new(0.5)),
    );
    add(
        "random seeking",
        measure(n, steps, seed, RandomSeeking::new(t / 2, t / 16 + 1, 4)),
    );

    println!("{}", table.to_text());
    println!("Reading guide: the paper's algorithm trades a constant-factor");
    println!("higher max load (O((llog n)^2) vs O(llog n)) for communication");
    println!("that is orders of magnitude below every arrival-time or");
    println!("every-step scheme — while keeping tasks where they were born.");
}
