//! Quickstart: run the paper's algorithm on a 1024-processor machine
//! under the `Single` generation model and print what Theorem 1
//! promises — a tiny maximum load at almost no communication.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pcrlb::prelude::*;

fn main() {
    let n = 1024;
    let steps = 10_000;
    let seed = 42;

    // Generate a task w.p. 0.4/step, consume w.p. 0.5/step (the paper's
    // Single model: geometrically distributed running times).
    let model = Single::default_paper();

    // The paper's algorithm with T = (log log n)^2 and all constants at
    // their published ratios.
    let balancer = ThresholdBalancer::paper(n);
    let t = balancer.config().theorem1_bound();

    let (report, _world, balancer) = Runner::new(n, seed)
        .model(model)
        .strategy(balancer)
        .probe(MaxLoadProbe::new())
        .run_detailed(steps);
    let worst = report.worst_max_load().unwrap_or(0);

    let stats = balancer.stats();
    println!("n = {n}, steps = {steps}, seed = {seed}");
    println!();
    println!("Theorem 1 bound T = (log log n)^2 = {t}");
    println!("worst max load observed   = {worst}");
    println!("final max load            = {}", report.max_load);
    println!(
        "mean load per processor   = {:.2}",
        report.total_load as f64 / n as f64
    );
    println!();
    println!("tasks completed           = {}", report.completions.count);
    println!(
        "mean waiting time         = {:.2} steps",
        report.completions.sojourn_mean()
    );
    println!(
        "ran on their origin       = {:.1}%",
        report.completions.locality() * 100.0
    );
    println!();
    let msgs = report.messages;
    println!("phases                    = {}", stats.phases);
    println!("heavy classifications     = {}", stats.heavy_total);
    println!(
        "match rate                = {:.3}",
        stats.match_rate().unwrap_or(1.0)
    );
    println!("control messages total    = {}", msgs.control_total());
    println!(
        "control messages per step = {:.3}  (balls-into-bins would pay ~{n}/step)",
        msgs.control_total() as f64 / steps as f64
    );

    assert!(worst <= 2 * t, "Theorem 1 shape violated");
}
