//! A real distributed run: node threads on 127.0.0.1, each hosting a
//! shard of processors, exchanging every collision-protocol message
//! inside per-peer batched frames over localhost TCP sockets — then
//! the same run on the deterministic loopback transport and on the
//! sequential backend, to show all three are bit-identical.
//!
//! Along the way the example measures what the paper only bounds:
//! Lemma 8's per-phase message count, observed as *physical frames on
//! the wire* rather than ledger entries. It also doubles as the E22
//! sweep harness: it reports steps/s and wire-frame throughput per
//! backend, so `for nodes in 2 4 8 ... 64` sweeps come straight from
//! this binary.
//!
//! ```text
//! cargo run --release --example net_run -- [n] [steps] [nodes] [--net-relaxed] [--loopback]
//!                                          [--policy P] [--topology G]
//! ```
//!
//! `--net-relaxed` applies transfers in network arrival order
//! (skipping the bit-for-bit fingerprint asserts, which relaxed mode
//! deliberately gives up); `--loopback` skips the TCP leg (for
//! loopback-only sweeps). `--policy`/`--topology` swap the balancer's
//! partner-selection policy and communication graph (the `--policy`
//! grammar of the CLI); the fingerprint equality asserts hold for
//! every combination, the Lemma 8 frame bound is only asserted for
//! the collision policy it was proved for.

use pcrlb::collision::CollisionParams;
use pcrlb::core::BalancerConfig;
use pcrlb::prelude::*;
use pcrlb::sim::{FrameStats, PolicySpec, TopologySpec};
use std::time::{Duration, Instant};

fn fingerprint(r: &RunReport) -> (u64, usize, u64, u64) {
    (
        r.total_load,
        r.max_load,
        r.completions.count,
        r.messages.control_total(),
    )
}

/// Physical wire frames per second: every batch is one frame on the
/// wire (self-node traffic never leaves the process and is excluded).
fn wire_fps(frames: &FrameStats, elapsed: Duration) -> f64 {
    frames.batches_sent as f64 / elapsed.as_secs_f64()
}

fn main() {
    let mut n: usize = 1 << 10;
    let mut steps: u64 = 1000;
    let mut nodes: usize = 4;
    let mut relaxed = false;
    let mut loopback_only = false;
    let mut policy: Option<PolicySpec> = None;
    let mut topology: Option<TopologySpec> = None;
    let mut positional = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--net-relaxed" => relaxed = true,
            "--loopback" => loopback_only = true,
            "--policy" => {
                let v = args.next().expect("--policy requires a value");
                policy = Some(PolicySpec::parse(&v).expect("bad --policy"));
            }
            "--topology" => {
                let v = args.next().expect("--topology requires a value");
                topology = Some(TopologySpec::parse(&v).expect("bad --topology"));
            }
            other => {
                let v: u64 = other
                    .parse()
                    .unwrap_or_else(|_| panic!("unrecognized argument '{other}'"));
                match positional {
                    0 => n = v as usize,
                    1 => steps = v,
                    2 => nodes = v as usize,
                    _ => panic!("too many positional arguments"),
                }
                positional += 1;
            }
        }
    }
    let seed = 1998;

    println!("n = {n}, steps = {steps}, nodes = {nodes}, relaxed = {relaxed}\n");

    let run = |backend: Backend| {
        let t0 = Instant::now();
        let mut balancer = ThresholdBalancer::new(BalancerConfig::paper(n).with_phase_reports());
        if let Some(topo) = &topology {
            balancer = balancer.with_topology(topo.build(n).expect("bad --topology for n"));
        }
        if let Some(spec) = &policy {
            balancer = balancer.with_policy_spec(spec);
        }
        let (report, world, _strategy) = Runner::new(n, seed)
            .model(Single::default_paper())
            .strategy(balancer)
            .backend(backend)
            .probe(PhaseProbe::new())
            .run_detailed(steps);
        (t0.elapsed(), report, world.net_frames())
    };
    let throughput = |label: &str, elapsed: Duration, frames: &FrameStats| {
        println!(
            "  {label}: {:.0} steps/s, {:.0} wire frames/s, {:.0} logical frames/s",
            steps as f64 / elapsed.as_secs_f64(),
            wire_fps(frames, elapsed),
            frames.frames_sent as f64 / elapsed.as_secs_f64(),
        );
    };

    // Baseline: the sequential shared-memory backend.
    let (seq_time, seq, _) = run(Backend::Sequential);
    let seq_fp = fingerprint(&seq);
    println!("sequential backend   {seq_time:>8.2?}  fingerprint {seq_fp:?}");

    // Loopback: the full message-passing runtime — encode into per-peer
    // batches, route through per-node mailboxes, close the watermark
    // round, decode — without sockets.
    let (loop_time, looped, loop_frames) = run(Backend::Net {
        nodes,
        tcp: false,
        relaxed,
    });
    println!(
        "loopback net ({nodes} nodes) {loop_time:>8.2?}  fingerprint {:?}",
        fingerprint(&looped)
    );
    let frames: FrameStats = loop_frames.expect("net run must expose frame stats");
    throughput("loopback", loop_time, &frames);
    if !relaxed {
        assert_eq!(seq_fp, fingerprint(&looped), "loopback diverged!");
    }

    if !loopback_only {
        // TCP: the same runtime over real localhost sockets —
        // non-blocking, poll-driven, batched frames, Hello handshakes,
        // connection reuse.
        let (tcp_time, tcp, tcp_frames) = run(Backend::Net {
            nodes,
            tcp: true,
            relaxed,
        });
        println!(
            "tcp net      ({nodes} nodes) {tcp_time:>8.2?}  fingerprint {:?}",
            fingerprint(&tcp)
        );
        let tcp_frames = tcp_frames.expect("net run must expose frame stats");
        throughput("tcp", tcp_time, &tcp_frames);
        if !relaxed {
            assert_eq!(seq_fp, fingerprint(&tcp), "tcp diverged!");
            assert_eq!(
                tcp_frames, frames,
                "tcp and loopback moved different frames"
            );
        }
    }

    // Frame analysis below uses the loopback run throughout: in relaxed
    // mode the TCP trajectory may legitimately diverge from it.
    let report = looped;

    println!("\n--- wire traffic (loopback run) ---");
    println!("logical frames sent   = {}", frames.frames_sent);
    println!("  control frames      = {}", frames.control_frames);
    println!("  transfer frames     = {}", frames.transfer_frames);
    println!("batches sent          = {}", frames.batches_sent);
    println!("  empty (sync only)   = {}", frames.sync_frames);
    println!("bytes sent            = {}", frames.bytes_sent);
    println!("tasks moved by frame  = {}", frames.payload_tasks);
    assert_eq!(
        frames.control_frames + frames.transfer_frames,
        report.messages.total(),
        "frames must mirror the message ledger one-for-one"
    );

    // Lemma 8 charges each phase a·R messages per request plus O(1)
    // bookkeeping and ≤ 2 classification probes per heavy processor.
    // With one logical frame per ledger message — batching changes the
    // physical packaging, not the count — the bound carries over to
    // observed frames-per-phase unchanged.
    let params = CollisionParams::lemma1();
    let a = params.a as u64;
    let r = u64::from(params.rounds(n));
    let phases = match report.probe("phases") {
        Some(ProbeOutput::Phases(p)) => p.clone(),
        other => panic!("unexpected probe output: {other:?}"),
    };
    println!("\n--- frames per phase vs Lemma 8 (a·R = {}) ---", a * r);
    let mut active: Vec<_> = phases
        .iter()
        .filter(|ph| ph.requests > 0 || ph.messages > 0)
        .collect();
    // The bound is proved for the collision protocol; alternate
    // policies report their traffic against it without asserting.
    let collision = policy
        .as_ref()
        .is_none_or(|p| matches!(p, PolicySpec::Collision));
    let mut worst_ratio = 0.0f64;
    let mut total_frames = 0u64;
    for ph in &active {
        let bound = ph.requests * (2 * a * r + 3) + 2 * ph.heavy as u64;
        if collision {
            assert!(ph.messages <= bound, "phase {} above Lemma 8", ph.phase);
        }
        worst_ratio = worst_ratio.max(ph.messages as f64 / bound as f64);
        total_frames += ph.messages;
    }
    active.sort_by_key(|ph| std::cmp::Reverse(ph.messages));
    println!(
        "{:>5} {:>8} {:>6} {:>8} {:>10}",
        "phase", "requests", "heavy", "frames", "L8 bound"
    );
    for ph in active.iter().take(10) {
        let bound = ph.requests * (2 * a * r + 3) + 2 * ph.heavy as u64;
        println!(
            "{:>5} {:>8} {:>6} {:>8} {:>10}",
            ph.phase, ph.requests, ph.heavy, ph.messages, bound
        );
    }
    println!("(10 busiest of {} active phases shown)", active.len());
    println!(
        "mean frames / active phase = {:.1}, worst frames/bound ratio = {:.2}",
        total_frames as f64 / active.len().max(1) as f64,
        worst_ratio
    );

    println!();
    if relaxed {
        println!("relaxed mode: transfers applied in arrival order — the bit-for-bit");
        println!("contract is deliberately waived, but work is conserved and Lemma 8's");
        println!("frame bound still holds (charging happens at send time).");
    } else {
        println!("identical fingerprints: the distributed executions reproduce the");
        println!("sequential run bit-for-bit. Determinism survives the wire because");
        println!("the runtime applies transfers in (seq) order at watermark rounds,");
        println!("so decoded state is independent of socket timing — and every");
        println!("ledger message costs exactly one logical frame, so Lemma 8's bound");
        println!("is an observable property of the traffic, not just the accounting.");
    }
}
