//! A real distributed run: four node threads on 127.0.0.1, each
//! hosting a shard of processors, exchanging every collision-protocol
//! message as a length-prefixed frame over localhost TCP sockets —
//! then the same run on the deterministic loopback transport and on
//! the sequential backend, to show all three are bit-identical.
//!
//! Along the way the example measures what the paper only bounds:
//! Lemma 8's per-phase message count, observed as *physical frames on
//! the wire* rather than ledger entries.
//!
//! ```text
//! cargo run --release --example net_run [n] [steps] [nodes]
//! ```

use pcrlb::collision::CollisionParams;
use pcrlb::core::BalancerConfig;
use pcrlb::prelude::*;
use pcrlb::sim::FrameStats;
use std::time::Instant;

fn fingerprint(r: &RunReport) -> (u64, usize, u64, u64) {
    (
        r.total_load,
        r.max_load,
        r.completions.count,
        r.messages.control_total(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 10);
    let steps: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let seed = 1998;

    println!("n = {n}, steps = {steps}, nodes = {nodes}\n");

    let run = |backend: Backend| {
        let t0 = Instant::now();
        let (report, world, _strategy) = Runner::new(n, seed)
            .model(Single::default_paper())
            .strategy(ThresholdBalancer::new(
                BalancerConfig::paper(n).with_phase_reports(),
            ))
            .backend(backend)
            .probe(PhaseProbe::new())
            .run_detailed(steps);
        (t0.elapsed(), report, world.net_frames())
    };

    // Baseline: the sequential shared-memory backend.
    let (seq_time, seq, _) = run(Backend::Sequential);
    let seq_fp = fingerprint(&seq);
    println!("sequential backend   {seq_time:>8.2?}  fingerprint {seq_fp:?}");

    // Loopback: the full message-passing runtime — encode, route
    // through per-node mailboxes, barrier, decode — without sockets.
    let (loop_time, looped, loop_frames) = run(Backend::Net { nodes, tcp: false });
    println!(
        "loopback net ({nodes} nodes) {loop_time:>8.2?}  fingerprint {:?}",
        fingerprint(&looped)
    );
    assert_eq!(seq_fp, fingerprint(&looped), "loopback diverged!");

    // TCP: the same runtime over real localhost sockets with
    // length-prefixed frames, Hello handshakes, and connection reuse.
    let (tcp_time, tcp, tcp_frames) = run(Backend::Net { nodes, tcp: true });
    println!(
        "tcp net      ({nodes} nodes) {tcp_time:>8.2?}  fingerprint {:?}",
        fingerprint(&tcp)
    );
    assert_eq!(seq_fp, fingerprint(&tcp), "tcp diverged!");

    let frames: FrameStats = tcp_frames.expect("net run must expose frame stats");
    assert_eq!(
        Some(frames),
        loop_frames,
        "tcp and loopback moved different frames"
    );

    println!("\n--- wire traffic (tcp run) ---");
    println!("frames sent           = {}", frames.frames_sent);
    println!("  control frames      = {}", frames.control_frames);
    println!("  transfer frames     = {}", frames.transfer_frames);
    println!("  barrier frames      = {}", frames.barrier_frames);
    println!("bytes sent            = {}", frames.bytes_sent);
    println!("tasks moved by frame  = {}", frames.payload_tasks);
    assert_eq!(
        frames.control_frames + frames.transfer_frames,
        tcp.messages.total(),
        "frames must mirror the message ledger one-for-one"
    );

    // Lemma 8 charges each phase a·R messages per request plus O(1)
    // bookkeeping and ≤ 2 classification probes per heavy processor.
    // With one frame per ledger message, the bound carries over to
    // physical frames-per-phase unchanged.
    let params = CollisionParams::lemma1();
    let a = params.a as u64;
    let r = u64::from(params.rounds(n));
    let phases = match tcp.probe("phases") {
        Some(ProbeOutput::Phases(p)) => p.clone(),
        other => panic!("unexpected probe output: {other:?}"),
    };
    println!("\n--- frames per phase vs Lemma 8 (a·R = {}) ---", a * r);
    let mut active: Vec<_> = phases
        .iter()
        .filter(|ph| ph.requests > 0 || ph.messages > 0)
        .collect();
    let mut worst_ratio = 0.0f64;
    let mut total_frames = 0u64;
    for ph in &active {
        let bound = ph.requests * (2 * a * r + 3) + 2 * ph.heavy as u64;
        assert!(ph.messages <= bound, "phase {} above Lemma 8", ph.phase);
        worst_ratio = worst_ratio.max(ph.messages as f64 / bound as f64);
        total_frames += ph.messages;
    }
    active.sort_by_key(|ph| std::cmp::Reverse(ph.messages));
    println!(
        "{:>5} {:>8} {:>6} {:>8} {:>10}",
        "phase", "requests", "heavy", "frames", "L8 bound"
    );
    for ph in active.iter().take(10) {
        let bound = ph.requests * (2 * a * r + 3) + 2 * ph.heavy as u64;
        println!(
            "{:>5} {:>8} {:>6} {:>8} {:>10}",
            ph.phase, ph.requests, ph.heavy, ph.messages, bound
        );
    }
    println!("(10 busiest of {} active phases shown)", active.len());
    println!(
        "mean frames / active phase = {:.1}, worst frames/bound ratio = {:.2}",
        total_frames as f64 / active.len().max(1) as f64,
        worst_ratio
    );

    println!();
    println!("identical fingerprints: the distributed executions reproduce the");
    println!("sequential run bit-for-bit. Determinism survives the wire because");
    println!("the runtime delivers frames at phase barriers in (src, seq) order,");
    println!("so decoded state is independent of socket timing — and every");
    println!("ledger message costs exactly one frame, so Lemma 8's bound is an");
    println!("observable property of the traffic, not just of the accounting.");
}
