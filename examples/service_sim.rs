//! Service simulation: the paper's balancer as the load-balancing
//! layer of an open-loop service.
//!
//! Unlike the closed-loop generation models of §1.2, arrivals here are
//! an open-loop Poisson process at offered load ρ per processor (with
//! optional burstiness, diurnal ramps, flash crowds, or Zipf hotspot
//! skew), service is unit-rate, and the observable is the *sojourn
//! distribution* — how long tasks wait from generation to completion —
//! streamed through a mergeable log-bucketed histogram and reported as
//! p50/p99/p999/max. With a bounded admission queue (`+shed:CAP` /
//! `+defer:CAP`) the simulation also counts the work turned away when
//! ρ pushes past capacity.
//!
//! The report deliberately never mentions the execution backend: with
//! the same seed, `--threads 1` and `--threads 4` print byte-identical
//! output, because every backend drives the same deterministic kernel.
//!
//! ```text
//! cargo run --release --example service_sim -- \
//!     --arrivals poisson:0.9 -n 262144 [--steps N] [--seed N] \
//!     [--slo-p999 T] [--threads N] [--policy P] [--topology G] [--quick]
//! ```

use pcrlb::prelude::*;
use pcrlb::sim::{PolicySpec, TopologySpec};

fn usage() -> ! {
    eprintln!(
        "usage: service_sim [OPTIONS]\n\
         \n\
         OPTIONS\n\
           --arrivals A   poisson[:rho] | burst:rho,on,off,mult |\n\
                          ramp:rho,period,amp | flash:rho,at,len,mult |\n\
                          zipf:rho,theta; append +shed:CAP or +defer:CAP\n\
                          (default poisson:0.9)\n\
           -n, --n N      processors (default 16384)\n\
           --steps N      steps to simulate (default 2000)\n\
           --seed N       master seed (default 1998)\n\
           --slo-p999 T   assert a sojourn p999 target of T steps\n\
           --threads N    worker threads; does not change the output\n\
           --policy P     partner policy: collision | greedy[:D] |\n\
                          beta[:B] | probe[:K] | left[:D]\n\
           --topology G   communication graph: complete | ring |\n\
                          torus[:RxC] | hypercube | regular:D[,SEED]\n\
           --quick        small smoke configuration (n=2048, 400 steps)\n"
    );
    std::process::exit(2);
}

fn main() {
    let mut arrivals = String::from("poisson:0.9");
    let mut n: usize = 1 << 14;
    let mut steps: u64 = 2_000;
    let mut seed: u64 = 1998;
    let mut threads: usize = 1;
    let mut slo_p999: Option<u64> = None;
    let mut policy: Option<PolicySpec> = None;
    let mut topology: Option<TopologySpec> = None;
    let mut quick = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--arrivals" => arrivals = value("--arrivals"),
            "-n" | "--n" => n = value("-n").parse().expect("-n must be an integer"),
            "--steps" => {
                steps = value("--steps")
                    .parse()
                    .expect("--steps must be an integer")
            }
            "--seed" => seed = value("--seed").parse().expect("--seed must be an integer"),
            "--threads" => {
                threads = value("--threads")
                    .parse()
                    .expect("--threads must be an integer")
            }
            "--slo-p999" => {
                slo_p999 = Some(
                    value("--slo-p999")
                        .parse()
                        .expect("--slo-p999 must be an integer"),
                )
            }
            "--policy" => {
                policy = Some(PolicySpec::parse(&value("--policy")).unwrap_or_else(|e| {
                    eprintln!("--policy: {e}");
                    std::process::exit(2);
                }))
            }
            "--topology" => {
                topology = Some(
                    TopologySpec::parse(&value("--topology")).unwrap_or_else(|e| {
                        eprintln!("--topology: {e}");
                        std::process::exit(2);
                    }),
                )
            }
            "--quick" => quick = true,
            _ => usage(),
        }
    }
    if quick {
        n = 2048;
        steps = 400;
    }

    let spec = match TrafficSpec::parse(&arrivals) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("--arrivals: {e}");
            std::process::exit(2);
        }
    };
    let model = TrafficModel::new(spec, n).expect("spec validated by parse");
    let admission = match spec.admission {
        Admission::Unbounded => String::from("unbounded"),
        Admission::Shed { cap } => format!("shed:{cap}"),
        Admission::Defer { cap } => format!("defer:{cap}"),
    };
    println!(
        "service_sim: n={n} steps={steps} seed={seed} arrivals={} rho={:.2} admission={admission}",
        model.name(),
        spec.rho
    );

    let backend = if threads > 1 {
        Backend::Pooled(threads)
    } else {
        Backend::Sequential
    };
    let mut balancer = ThresholdBalancer::paper(n);
    if let Some(topo) = &topology {
        match topo.build(n) {
            Ok(t) => balancer = balancer.with_topology(t),
            Err(e) => {
                eprintln!("--topology: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(spec) = &policy {
        balancer = balancer.with_policy_spec(spec);
    }
    let report = Runner::new(n, seed)
        .model(model)
        .strategy(balancer)
        .backend(backend)
        .probe(SojournProbe::new())
        .run(steps);

    match report.probe("sojourn") {
        Some(&ProbeOutput::Sojourn {
            count,
            mean,
            p50,
            p99,
            p999,
            pmax,
            shed,
            deferred,
        }) => {
            println!("tasks completed        = {count}");
            println!("sojourn mean           = {mean:.2}");
            println!("sojourn p50            = {p50}");
            println!("sojourn p99            = {p99}");
            println!("sojourn p999           = {p999}");
            println!("sojourn max            = {pmax}");
            println!("tasks shed             = {shed}");
            println!("arrival-steps deferred = {deferred}");
            if let Some(target) = slo_p999 {
                let verdict = if p999 <= target { "met" } else { "MISSED" };
                println!("SLO p999 <= {target} steps: {verdict}");
                if p999 > target {
                    std::process::exit(1);
                }
            }
        }
        other => panic!("unexpected probe output: {other:?}"),
    }
}
