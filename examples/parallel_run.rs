//! Real parallelism, verified: the same balanced run executed (a) on
//! the sequential backend, (b) on the threaded backend with the
//! per-processor sub-steps sharded across OS threads, (c) with the
//! phase's collision games additionally executed as message-passing
//! threads, and (d) on the persistent worker pool — all bit-identical,
//! because every processor owns its own RNG stream and the collision
//! game is insensitive to message arrival order.
//!
//! The backend is a runtime value ([`Backend`]) on the [`Runner`], so
//! all three configurations go through the identical driver code.
//!
//! ```text
//! cargo run --release --example parallel_run [n] [steps] [threads]
//! ```

use pcrlb::core::BalancerConfig;
use pcrlb::prelude::*;
use std::time::Instant;

fn fingerprint(r: &RunReport) -> (u64, usize, u64, u64) {
    // A compact digest of the final state: total load, max load,
    // completions, and control messages.
    (
        r.total_load,
        r.max_load,
        r.completions.count,
        r.messages.control_total(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 16);
    let steps: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let threads: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()));
    let seed = 1998;
    let model = Single::default_paper();

    println!("n = {n}, steps = {steps}, worker threads = {threads}\n");

    let run = |backend: Backend, cfg: BalancerConfig| {
        let t0 = Instant::now();
        let report = Runner::new(n, seed)
            .model(model)
            .strategy(ThresholdBalancer::new(cfg))
            .backend(backend)
            .run(steps);
        (t0.elapsed(), report)
    };

    // (a) Sequential.
    let (seq_time, seq) = run(Backend::Sequential, BalancerConfig::paper(n));
    let seq_fp = fingerprint(&seq);
    println!(
        "sequential backend             {:>8.2?}  fingerprint {:?}",
        seq_time, seq_fp
    );

    // (b) Threaded backend (generation/consumption sharded).
    let (par_time, par) = run(Backend::Threaded(threads), BalancerConfig::paper(n));
    let par_fp = fingerprint(&par);
    println!(
        "threaded backend ({threads:>2} threads)  {:>8.2?}  fingerprint {:?}",
        par_time, par_fp
    );
    assert_eq!(seq_fp, par_fp, "threaded backend diverged!");

    // (c) Threaded backend + threaded collision games.
    let cfg = BalancerConfig::paper(n).with_game_shards(threads);
    let (full_time, full) = run(Backend::Threaded(threads), cfg);
    let full_fp = fingerprint(&full);
    println!(
        "+ threaded collision games     {:>8.2?}  fingerprint {:?}",
        full_time, full_fp
    );
    assert_eq!(seq_fp, full_fp, "threaded games diverged!");

    // (d) Persistent worker pool: same sharded kernel, but the workers
    // are spawned once for the whole run instead of once per step.
    let (pool_time, pooled) = run(Backend::Pooled(threads), BalancerConfig::paper(n));
    let pool_fp = fingerprint(&pooled);
    println!(
        "pooled backend   ({threads:>2} workers)  {:>8.2?}  fingerprint {:?}",
        pool_time, pool_fp
    );
    assert_eq!(seq_fp, pool_fp, "pooled backend diverged!");

    println!();
    println!("identical fingerprints: the parallel executions reproduce the");
    println!("sequential run bit-for-bit — determinism comes from per-processor");
    println!("RNG streams plus the collision protocol's insensitivity to");
    println!("message arrival order within a round.");
    let speedup = seq_time.as_secs_f64() / par_time.as_secs_f64();
    println!("threaded-backend speedup over sequential: {speedup:.2}x");
    println!();
    println!("(Expect modest numbers: simulating a processor's step is a few");
    println!("RNG draws and queue pokes, so the simulation is memory-bound,");
    println!("and the balancing phase itself is coordinated serially exactly");
    println!("as the paper's synchronous phases are. The point demonstrated");
    println!("here is determinism-preserving parallel execution; wall-clock");
    println!("scaling is profiled separately in benches/parallel_scaling.rs.)");
}
