//! Real parallelism, verified: the same balanced run executed (a) on
//! the sequential engine, (b) on the threaded engine with the
//! per-processor sub-steps sharded across OS threads, and (c) with the
//! phase's collision games additionally executed as message-passing
//! threads — all three bit-identical, because every processor owns its
//! own RNG stream and the collision game is insensitive to message
//! arrival order.
//!
//! ```text
//! cargo run --release --example parallel_run [n] [steps] [threads]
//! ```

use pcrlb::core::BalancerConfig;
use pcrlb::prelude::*;
use std::time::Instant;

fn fingerprint(w: &World) -> (u64, usize, u64, u64) {
    // A compact digest of the final state: total load, max load,
    // completions, and control messages.
    (
        w.total_load(),
        w.max_load(),
        w.completions().count,
        w.messages().control_total(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 16);
    let steps: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let threads: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()));
    let seed = 1998;
    let model = Single::default_paper();

    println!("n = {n}, steps = {steps}, worker threads = {threads}\n");

    // (a) Sequential.
    let t0 = Instant::now();
    let mut seq = Engine::new(n, seed, model, ThresholdBalancer::paper(n));
    seq.run(steps);
    let seq_time = t0.elapsed();
    let seq_fp = fingerprint(seq.world());
    println!(
        "sequential engine              {:>8.2?}  fingerprint {:?}",
        seq_time, seq_fp
    );

    // (b) Threaded engine (generation/consumption sharded).
    let t0 = Instant::now();
    let mut par = ParallelEngine::new(n, seed, model, ThresholdBalancer::paper(n), threads);
    par.run(steps);
    let par_time = t0.elapsed();
    let par_fp = fingerprint(par.world());
    println!(
        "threaded engine ({threads:>2} threads)   {:>8.2?}  fingerprint {:?}",
        par_time, par_fp
    );
    assert_eq!(seq_fp, par_fp, "threaded engine diverged!");

    // (c) Threaded engine + threaded collision games.
    let cfg = BalancerConfig::paper(n).with_game_shards(threads);
    let t0 = Instant::now();
    let mut full = ParallelEngine::new(n, seed, model, ThresholdBalancer::new(cfg), threads);
    full.run(steps);
    let full_time = t0.elapsed();
    let full_fp = fingerprint(full.world());
    println!(
        "+ threaded collision games     {:>8.2?}  fingerprint {:?}",
        full_time, full_fp
    );
    assert_eq!(seq_fp, full_fp, "threaded games diverged!");

    println!();
    println!("identical fingerprints: the parallel executions reproduce the");
    println!("sequential run bit-for-bit — determinism comes from per-processor");
    println!("RNG streams plus the collision protocol's insensitivity to");
    println!("message arrival order within a round.");
    let speedup = seq_time.as_secs_f64() / par_time.as_secs_f64();
    println!("threaded-engine speedup over sequential: {speedup:.2}x");
    println!();
    println!("(Expect modest numbers: simulating a processor's step is a few");
    println!("RNG draws and queue pokes, so the simulation is memory-bound,");
    println!("and the balancing phase itself is coordinated serially exactly");
    println!("as the paper's synchronous phases are. The point demonstrated");
    println!("here is determinism-preserving parallel execution; wall-clock");
    println!("scaling is profiled separately in benches/parallel_scaling.rs.)");
}
