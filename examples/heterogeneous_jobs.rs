//! Heterogeneous job sizes: the weighted extension in action.
//!
//! Most jobs are quick, a few are monsters (a bimodal weight
//! distribution). A balancer that counts *tasks* is blind to the
//! difference — a queue of three monsters looks "light". The weighted
//! mode classifies by remaining work and moves work units, which is the
//! continuous version of the BMS'97 weighted balls result the paper
//! cites as the state of the art for weighted allocation.
//!
//! ```text
//! cargo run --release --example heterogeneous_jobs
//! ```

use pcrlb::analysis::Table;
use pcrlb::core::{BalancerConfig, Multi, ThresholdBalancer, WeightDist, Weighted};
use pcrlb::prelude::*;

struct Outcome {
    worst_weighted: u64,
    worst_count: usize,
    mean_wait: f64,
    transfers: u64,
}

fn simulate(n: usize, steps: u64, seed: u64, cfg: BalancerConfig) -> Outcome {
    // 30% chance of a job per step; 5% of jobs are 8x the size.
    let jobs = Weighted::new(
        Multi::new(vec![0.3]).expect("valid"),
        WeightDist::Bimodal {
            heavy: 8,
            prob: 0.05,
        },
    );
    let report = Runner::new(n, seed)
        .model(jobs)
        .strategy(ThresholdBalancer::new(cfg))
        .probe(MaxLoadProbe::new())
        .run(steps);
    Outcome {
        worst_weighted: report.worst_max_weighted_load().unwrap_or(0),
        worst_count: report.worst_max_load().unwrap_or(0),
        mean_wait: report.completions.sojourn_mean(),
        transfers: report.messages.transfers,
    }
}

fn main() {
    let n = 2048;
    let steps = 8_000;
    let seed = 77;
    let dist = WeightDist::Bimodal {
        heavy: 8,
        prob: 0.05,
    };
    let mean_w = dist.mean();
    let unit_t = BalancerConfig::paper(n).t;
    let weighted_t = ((unit_t as f64) * mean_w).ceil() as usize;

    println!("heterogeneous jobs on {n} workers: 95% weight-1, 5% weight-8 (mean {mean_w:.2});");
    println!("unit T = {unit_t}, weighted T = {weighted_t}\n");

    let count_blind = simulate(n, steps, seed, BalancerConfig::paper(n));
    let weighted = simulate(
        n,
        steps,
        seed,
        BalancerConfig::from_t(n, weighted_t).with_weighted(),
    );

    let mut table = Table::new(&[
        "balancer",
        "worst backlog (work units)",
        "worst queue (tasks)",
        "mean wait",
        "transfers",
    ]);
    let mut add = |name: &str, o: &Outcome| {
        table.row(&[
            name.to_string(),
            o.worst_weighted.to_string(),
            o.worst_count.to_string(),
            format!("{:.2}", o.mean_wait),
            o.transfers.to_string(),
        ]);
    };
    add("count-blind (paper unit model)", &count_blind);
    add("weighted (BMS'97 direction)", &weighted);
    println!("{}", table.to_text());

    println!("The count-blind balancer lets monster jobs pile invisible backlog;");
    println!("weighted classification sees the work itself and caps it.");
    assert!(
        weighted.worst_weighted <= count_blind.worst_weighted,
        "weighted mode should not lose on weighted backlog"
    );
}
