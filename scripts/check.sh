#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test suite.
#
# Usage: scripts/check.sh
# Fails fast on the first broken stage so the fix loop is short.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "All checks passed."
