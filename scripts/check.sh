#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tiered test suites.
#
# Usage: scripts/check.sh [--stage <name>]
#
#   --stage lint      cargo fmt --check + clippy -D warnings
#   --stage tier1     release build + full `cargo test -q` + CLI
#                     determinism sweep across --threads
#   --stage faults    fault-plan determinism sweep + tests/faults.rs
#   --stage net       message-passing runtime: unit/property tests,
#                     equivalence suite, CLI loopback + TCP smoke
#   --stage service   open-loop traffic + latency histogram suites
#   --stage policy    partner-policy x topology suite: backend
#                     equality, default-run byte-identity, and the
#                     policy_hotpath gate (BENCH_pr8.json)
#   --stage churn     elastic-membership suite: churn property tests,
#                     CLI churn sweep byte-identity across
#                     seq/pooled/net:2, and the churn_hotpath gate
#                     (BENCH_pr10.json)
#   --stage bench     soa_hotpath quick bench gated on the committed
#                     trajectory (BENCH_pr*.json)
#   --stage all       every stage in order plus the advisory TSan run
#                     (the default; preserves historical behavior)
#
# Each stage is self-contained (builds what it needs), so CI can run
# them as independent jobs. Fails fast on the first broken stage so the
# fix loop is short.
set -euo pipefail
cd "$(dirname "$0")/.."

stage=all
while [[ $# -gt 0 ]]; do
  case "$1" in
    --stage)
      [[ $# -ge 2 ]] || { echo "--stage needs an argument" >&2; exit 2; }
      stage="$2"
      shift 2
      ;;
    *)
      echo "unknown argument: $1" >&2
      echo "usage: scripts/check.sh [--stage lint|tier1|faults|net|service|policy|churn|bench|all]" >&2
      exit 2
      ;;
  esac
done

# Stages that drive the CLI end to end need the release binary; cargo
# makes this a no-op when it is already fresh.
ensure_release_bin() {
  cargo build --release --quiet
}

stage_lint() {
  echo "==> cargo fmt --check"
  cargo fmt --all -- --check

  echo "==> cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
}

stage_tier1() {
  echo "==> tier-1: cargo build --release"
  cargo build --release

  echo "==> tier-1: cargo test -q"
  cargo test -q

  echo "==> determinism across --threads (CLI end to end)"
  # The report printed by the binary must be byte-identical for every
  # thread count: the pool backend is bit-exact by construction.
  baseline="$(./target/release/pcrlb --n 512 --steps 1500 --seed 7 --threads 1)"
  for t in 2 4 8; do
    got="$(./target/release/pcrlb --n 512 --steps 1500 --seed 7 --threads "$t")"
    if [[ "$got" != "$baseline" ]]; then
      echo "FAIL: --threads $t output differs from --threads 1" >&2
      diff <(echo "$baseline") <(echo "$got") >&2 || true
      exit 1
    fi
  done
  echo "    --threads {1,2,4,8} agree"
}

stage_faults() {
  ensure_release_bin
  echo "==> fault suite (determinism under loss + crashes, CLI end to end)"
  # With faults enabled the run is a pure function of (seed, fault-seed):
  # still byte-identical for every thread count, and the fault lines must
  # actually appear (a silent fall-back to the reliable path would also
  # pass the determinism sweep).
  fault_flags=(--n 512 --steps 1500 --seed 7 --loss-rate 0.05 --crash-rate 0.02 --fault-seed 3)
  faulty_baseline="$(./target/release/pcrlb "${fault_flags[@]}" --threads 1)"
  if ! grep -q "messages dropped" <<<"$faulty_baseline"; then
    echo "FAIL: faulty run printed no fault report" >&2
    exit 1
  fi
  for t in 2 4 8; do
    got="$(./target/release/pcrlb "${fault_flags[@]}" --threads "$t")"
    if [[ "$got" != "$faulty_baseline" ]]; then
      echo "FAIL: faulty run with --threads $t differs from --threads 1" >&2
      diff <(echo "$faulty_baseline") <(echo "$got") >&2 || true
      exit 1
    fi
  done
  echo "    faulty --threads {1,2,4,8} agree"
  cargo test -q --test faults >/dev/null
  echo "    tests/faults.rs green"
}

stage_net() {
  ensure_release_bin
  echo "==> net-suite (message-passing runtime)"
  # The wire layer's own tests: codec round-trips, batch frames,
  # transports, then the cross-crate equivalence suite (loopback ≡
  # sequential bit-for-bit at 1/2/4/8 nodes, reliable and lossy, plus
  # the localhost-TCP smoke).
  cargo test -q -p pcrlb-net >/dev/null
  echo "    pcrlb-net unit + property tests green"
  cargo test -q --test net_equivalence >/dev/null
  echo "    tests/net_equivalence.rs green"
  # CLI end to end: the printed report must be byte-identical when every
  # protocol message travels through the loopback transport, for any
  # node count.
  baseline="$(./target/release/pcrlb --n 512 --steps 1500 --seed 7 --threads 1)"
  for nodes in 1 2 4 8; do
    got="$(./target/release/pcrlb --n 512 --steps 1500 --seed 7 --backend "net:$nodes")"
    if [[ "$got" != "$baseline" ]]; then
      echo "FAIL: --backend net:$nodes output differs from sequential" >&2
      diff <(echo "$baseline") <(echo "$got") >&2 || true
      exit 1
    fi
  done
  echo "    --backend net:{1,2,4,8} match the sequential report"
  # Short localhost-TCP smoke: real sockets, same bytes out.
  got="$(./target/release/pcrlb --n 256 --steps 300 --seed 7 --backend tcp:2)"
  want="$(./target/release/pcrlb --n 256 --steps 300 --seed 7)"
  if [[ "$got" != "$want" ]]; then
    echo "FAIL: --backend tcp:2 output differs from sequential" >&2
    diff <(echo "$want") <(echo "$got") >&2 || true
    exit 1
  fi
  echo "    --backend tcp:2 smoke matches the sequential report"
  # Relaxed mode trades the bit-for-bit contract for arrival-order
  # application; the run must still complete and conserve work.
  ./target/release/pcrlb --n 256 --steps 300 --seed 7 --backend net:4 --net-relaxed >/dev/null
  echo "    --net-relaxed loopback run completes"
}

stage_service() {
  ensure_release_bin
  echo "==> service-suite (open-loop traffic + latency histograms)"
  # The service-simulation layer: histogram merge/quantile properties,
  # the statistical shape suite (Poisson band, Little's law, tail
  # monotonicity), then the open-loop CLI and example end to end — the
  # sojourn block must be byte-identical across backends like every
  # other report line.
  cargo test -q -p pcrlb-sim --test prop_latency >/dev/null
  echo "    prop_latency.rs green"
  cargo test -q --test service_shape >/dev/null
  echo "    tests/service_shape.rs green"
  svc_flags=(--n 512 --steps 1000 --seed 7 --arrivals poisson:0.9+shed:32 --slo-p999 100)
  svc_baseline="$(./target/release/pcrlb "${svc_flags[@]}" --threads 1)"
  if ! grep -q "sojourn p50/p99/p999" <<<"$svc_baseline"; then
    echo "FAIL: open-loop run printed no service block" >&2
    exit 1
  fi
  for t in 4; do
    got="$(./target/release/pcrlb "${svc_flags[@]}" --threads "$t")"
    if [[ "$got" != "$svc_baseline" ]]; then
      echo "FAIL: open-loop run with --threads $t differs from --threads 1" >&2
      diff <(echo "$svc_baseline") <(echo "$got") >&2 || true
      exit 1
    fi
  done
  echo "    open-loop CLI --threads {1,4} agree"
  svc_quick="$(cargo run -q --release --example service_sim -- --quick)"
  svc_quick4="$(cargo run -q --release --example service_sim -- --quick --threads 4)"
  if [[ "$svc_quick" != "$svc_quick4" ]]; then
    echo "FAIL: service_sim --quick differs between --threads 1 and 4" >&2
    diff <(echo "$svc_quick") <(echo "$svc_quick4") >&2 || true
    exit 1
  fi
  echo "    service_sim --quick smoke agrees across backends"
}

stage_policy() {
  ensure_release_bin
  echo "==> policy-suite (partner policies x topologies)"
  # Backend-equality property tests (every policy on every topology,
  # all four backends, collision additionally at 5% loss) plus the
  # topology invariants, then the focused unit tests.
  cargo test -q -p pcrlb-sim --test prop_soa >/dev/null
  echo "    prop_soa.rs (policy backend equality + topology invariants) green"
  cargo test -q -p pcrlb-sim --lib policy >/dev/null
  cargo test -q -p pcrlb-sim --lib topology >/dev/null
  cargo test -q -p pcrlb-core --lib policy >/dev/null
  echo "    policy/topology unit tests green"
  # The refactor must be invisible unless asked for: spelling out the
  # defaults may not change a byte of the report.
  base="$(./target/release/pcrlb --n 512 --steps 1500 --seed 7)"
  got="$(./target/release/pcrlb --n 512 --steps 1500 --seed 7 --policy collision --topology complete)"
  if [[ "$got" != "$base" ]]; then
    echo "FAIL: --policy collision --topology complete differs from the default run" >&2
    diff <(echo "$base") <(echo "$got") >&2 || true
    exit 1
  fi
  echo "    --policy collision --topology complete is byte-identical to the default"
  # Every policy family on a distinct topology: the CLI report must be
  # byte-identical across thread counts and the loopback net backend.
  for combo in "greedy:2 ring" "beta:0.5 hypercube" "probe:4 torus" "left:2 regular:4" "collision ring"; do
    read -r p g <<<"$combo"
    one="$(./target/release/pcrlb --n 256 --steps 600 --seed 7 --policy "$p" --topology "$g" --threads 1)"
    for alt in "--threads 4" "--backend net:2"; do
      # shellcheck disable=SC2086
      got="$(./target/release/pcrlb --n 256 --steps 600 --seed 7 --policy "$p" --topology "$g" $alt)"
      if [[ "$got" != "$one" ]]; then
        echo "FAIL: --policy $p --topology $g with $alt differs from --threads 1" >&2
        diff <(echo "$one") <(echo "$got") >&2 || true
        exit 1
      fi
    done
    echo "    --policy $p --topology $g agrees across {seq, 4 threads, net:2}"
  done
  # The policy hot path, gated on the committed baseline: the trait
  # indirection may not cost the collision protocol >10%.
  mkdir -p target
  gate_args=()
  if [[ "${UPDATE_BENCH:-0}" == "1" ]]; then
    gate_args=(--update "$PWD/BENCH_pr8.json")
  elif [[ -f BENCH_pr8.json ]]; then
    gate_args=(--gate "$PWD/BENCH_pr8.json")
  fi
  cargo bench -p pcrlb-bench --bench policy_hotpath -- \
    --quick --json "$PWD/target/policy_bench.json" ${gate_args[@]+"${gate_args[@]}"} \
    | grep '^policy_hotpath'
  if [[ "${UPDATE_BENCH:-0}" == "1" ]]; then
    echo "    BENCH_pr8.json policy_hotpath baseline updated from this run"
  else
    echo "    collision hot path within 10% of the committed baseline"
  fi
}

stage_churn() {
  ensure_release_bin
  echo "==> churn-suite (elastic membership)"
  # The membership subsystem's own tests (ChurnSpec grammar, epoch
  # state machine, world activation), the cross-backend property suite
  # (five schedules x four backends, with and without 5% message loss,
  # plus evacuation conservation), and the E25 experiment unit tests.
  cargo test -q -p pcrlb-sim --lib membership >/dev/null
  echo "    pcrlb-sim membership unit tests green"
  cargo test -q --test churn_equivalence >/dev/null
  echo "    tests/churn_equivalence.rs green"
  cargo test -q -p pcrlb-bench --lib membership >/dev/null
  echo "    e25-membership experiment tests green"
  # CLI end to end: under a composite churn schedule the printed report
  # (including the membership block) must be byte-identical across the
  # sequential, pooled, and net backends.
  churn_flags=(--n 512 --steps 1500 --seed 7 --churn "step:300,256;ramp:256,512,800,400")
  churn_baseline="$(./target/release/pcrlb "${churn_flags[@]}" --threads 1)"
  if ! grep -q "membership epochs" <<<"$churn_baseline"; then
    echo "FAIL: churn run printed no membership block" >&2
    exit 1
  fi
  for alt in "--threads 4" "--backend net:2"; do
    # shellcheck disable=SC2086
    got="$(./target/release/pcrlb "${churn_flags[@]}" $alt)"
    if [[ "$got" != "$churn_baseline" ]]; then
      echo "FAIL: churn run with $alt differs from --threads 1" >&2
      diff <(echo "$churn_baseline") <(echo "$got") >&2 || true
      exit 1
    fi
  done
  echo "    --churn report agrees across {seq, 4 threads, net:2}"
  # Churn composes with faults: loss on top of a membership step stays
  # deterministic too.
  lossy_one="$(./target/release/pcrlb "${churn_flags[@]}" --loss-rate 0.05 --fault-seed 3 --threads 1)"
  lossy_four="$(./target/release/pcrlb "${churn_flags[@]}" --loss-rate 0.05 --fault-seed 3 --threads 4)"
  if [[ "$lossy_one" != "$lossy_four" ]]; then
    echo "FAIL: churn + loss run differs between --threads 1 and 4" >&2
    diff <(echo "$lossy_one") <(echo "$lossy_four") >&2 || true
    exit 1
  fi
  echo "    --churn + --loss-rate 0.05 agrees across backends"
  # The membership hot path, gated on the committed baseline: a run
  # with no schedule installed may not pay for the subsystem, and the
  # batch-churn scenario may not regress >10%.
  mkdir -p target
  gate_args=()
  if [[ "${UPDATE_BENCH:-0}" == "1" ]]; then
    gate_args=(--update "$PWD/BENCH_pr10.json")
  elif [[ -f BENCH_pr10.json ]]; then
    gate_args=(--gate "$PWD/BENCH_pr10.json")
  fi
  cargo bench -p pcrlb-bench --bench churn_hotpath -- \
    --quick --json "$PWD/target/churn_bench.json" ${gate_args[@]+"${gate_args[@]}"} \
    | grep '^churn_hotpath'
  if [[ "${UPDATE_BENCH:-0}" == "1" ]]; then
    echo "    BENCH_pr10.json churn_hotpath baseline updated from this run"
  else
    echo "    churn hot path within 10% of the committed baseline"
  fi
}

stage_bench() {
  echo "==> bench-smoke (soa_hotpath, quick mode)"
  # Measures processor-steps/sec on the SoA hot path and gates against
  # the committed trajectory (BENCH_pr7.json, falling back to the older
  # BENCH_pr6.json): a >10% regression at n=2^18 (sequential) fails the
  # gate. (BENCH_pr8.json is the E22 net-throughput sweep, a different
  # schema — it is not a soa_hotpath gate input.) Refresh the committed
  # numbers with UPDATE_BENCH=1 scripts/check.sh --stage bench (only on
  # quiet, comparable hardware).
  # Absolute paths: cargo runs the bench with CWD = crates/bench. When
  # re-baselining (UPDATE_BENCH=1, or no committed file yet) the gate is
  # skipped — the fresh numbers *become* the trajectory.
  mkdir -p target
  gate_args=()
  rebaseline=0
  if [[ "${UPDATE_BENCH:-0}" == "1" ]]; then
    rebaseline=1
  elif [[ -f BENCH_pr7.json ]]; then
    gate_args=(--gate "$PWD/BENCH_pr7.json")
  elif [[ -f BENCH_pr6.json ]]; then
    gate_args=(--gate "$PWD/BENCH_pr6.json")
  else
    rebaseline=1
  fi
  cargo bench -p pcrlb-bench --bench soa_hotpath -- \
    --quick --json "$PWD/target/bench_smoke.json" ${gate_args[@]+"${gate_args[@]}"} \
    | grep '^soa_hotpath'
  if [[ "$rebaseline" == "1" ]]; then
    cp target/bench_smoke.json BENCH_pr7.json
    echo "    BENCH_pr7.json updated from this run"
  else
    echo "    throughput within 10% of the committed trajectory"
  fi
}

stage_tsan_advisory() {
  # Advisory: ThreadSanitizer over the pool and threaded backends.
  # Needs a nightly toolchain with rust-src; skipped (not failed) when
  # unavailable, and failures never block the gate — TSan has known
  # false positives with std's runtime.
  if command -v rustup >/dev/null 2>&1 \
    && rustup toolchain list 2>/dev/null | grep -q nightly \
    && rustup component list --toolchain nightly 2>/dev/null \
       | grep -q 'rust-src.*(installed)'; then
    host="$(rustc -vV | sed -n 's/^host: //p')"
    echo "==> advisory: ThreadSanitizer (nightly, non-blocking)"
    if ! RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -p pcrlb-sim --lib --target "$host" \
        -Z build-std -q; then
      echo "    TSan run failed (advisory only; not blocking the gate)"
    fi
  else
    echo "==> advisory: ThreadSanitizer skipped (needs nightly + rust-src)"
  fi
}

case "$stage" in
  lint) stage_lint ;;
  tier1) stage_tier1 ;;
  faults) stage_faults ;;
  net) stage_net ;;
  service) stage_service ;;
  policy) stage_policy ;;
  churn) stage_churn ;;
  bench) stage_bench ;;
  all)
    stage_lint
    stage_tier1
    stage_faults
    stage_net
    stage_service
    stage_policy
    stage_churn
    stage_bench
    stage_tsan_advisory
    ;;
  *)
    echo "unknown stage: $stage" >&2
    echo "usage: scripts/check.sh [--stage lint|tier1|faults|net|service|policy|churn|bench|all]" >&2
    exit 2
    ;;
esac

echo "All checks passed (stage: $stage)."
